package server

import (
	"expvar"
	"sync"
	"time"

	"ligra/internal/core"
	"ligra/internal/delta"
	"ligra/internal/parallel"
	"ligra/internal/server/batch"
	"ligra/internal/server/engine"
	"ligra/internal/server/resilience"
)

// Metrics is the server's counter set, built from expvar's atomic types
// but scoped to one Server instance (nothing is published to the global
// expvar registry, so tests can run many servers in one process). The
// /metrics endpoint renders a Snapshot as JSON.
type Metrics struct {
	start time.Time

	// InFlight is the number of queries currently executing.
	InFlight expvar.Int
	// Admitted counts queries that acquired an admission slot.
	Admitted expvar.Int
	// Rejected counts queries turned away with 429 (admission full).
	Rejected expvar.Int

	mu    sync.Mutex
	algos map[string]*AlgoMetrics
	// backends counts executed (non-cached, non-coalesced) queries by the
	// execution backend that ran them ("edgemap" / "spmv"), so the mix of
	// edgeMap and semiring-kernel executions is observable.
	backends map[string]*expvar.Int
}

// AlgoMetrics is one algorithm's counter set.
type AlgoMetrics struct {
	// Requests counts queries dispatched to the algorithm.
	Requests expvar.Int
	// Errors counts queries that failed for reasons other than a
	// timeout or a contained panic (e.g. invalid input for the algorithm).
	Errors expvar.Int
	// Timeouts counts queries interrupted by deadline or cancellation
	// (the client got a 504 with a partial result).
	Timeouts expvar.Int
	// Panics counts queries whose worker panicked; the panic was
	// contained and the server kept serving.
	Panics expvar.Int
	// LatencyMsSum accumulates wall-clock execution milliseconds, so
	// LatencyMsSum/Requests is the mean latency.
	LatencyMsSum expvar.Float
}

// NewMetrics returns a zeroed metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		algos:    make(map[string]*AlgoMetrics),
		backends: make(map[string]*expvar.Int),
	}
}

// Backend returns (creating on first use) the named execution backend's
// executed-query counter.
func (m *Metrics) Backend(name string) *expvar.Int {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.backends[name]
	if !ok {
		b = &expvar.Int{}
		m.backends[name] = b
	}
	return b
}

// Algo returns (creating on first use) the named algorithm's counters.
func (m *Metrics) Algo(name string) *AlgoMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.algos[name]
	if !ok {
		a = &AlgoMetrics{}
		m.algos[name] = a
	}
	return a
}

// AlgoSnapshot is the JSON rendering of one algorithm's counters.
type AlgoSnapshot struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Timeouts     int64   `json:"timeouts"`
	Panics       int64   `json:"panics"`
	LatencyMsSum float64 `json:"latency_ms_sum"`
}

// Snapshot is the JSON document served at /metrics.
type Snapshot struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	InFlight      int64                   `json:"in_flight"`
	Admitted      int64                   `json:"admitted"`
	Rejected429   int64                   `json:"rejected_429"`
	Algos         map[string]AlgoSnapshot `json:"algos"`
	// Backends counts executed queries per execution backend ("edgemap" /
	// "spmv"); cached and coalesced replies are not counted (they ran
	// nothing). Empty until a backend-reporting algorithm executes.
	Backends map[string]int64 `json:"backends,omitempty"`
	Graphs        []GraphInfo             `json:"graphs"`
	GraphBytes    int64                   `json:"graph_bytes_total"`
	// GraphMappedBytes totals the memory-mapped (page-cache resident)
	// bytes of mmap-backed graphs, reported separately from the heap
	// bytes in graph_bytes_total.
	GraphMappedBytes int64 `json:"graph_mapped_bytes_total,omitempty"`
	// Query is the query engine's counter set: result-cache
	// hits/misses/evictions and footprint, coalesced query counts, and
	// parallelism-governor slot occupancy.
	Query engine.Stats `json:"query_engine"`
	// Traversal is the process-wide edgeMap counter set (calls, the
	// sparse/dense decision split, frontier sizes, edges weighed), so the
	// direction-optimization behaviour of served queries is observable.
	Traversal core.StatsSnapshot `json:"traversal"`
	// Scheduler is the worker-pool scheduler's counter set (pool size,
	// dispatches vs inline runs including the sequential cutoff, worker
	// park/wake counts), so per-query scheduling overhead — and whether
	// governor-leased queries are dispatching at all — is observable.
	Scheduler parallel.SchedulerStats `json:"scheduler"`
	// Resilience is the overload-protection subsystem's counter set:
	// shed decisions by reason, breaker transitions and current open
	// states, retry-budget spend, and watchdog trips.
	Resilience ResilienceSnapshot `json:"resilience"`
	// Batch is the batch collector's counter set (sweeps run, queries
	// batched, mean batch size, window fires, fanout errors); all-zero
	// when batching is disabled.
	Batch batch.Stats `json:"batch"`
	// Updates aggregates every resident graph's delta-store counters:
	// update batches and requests, effective edge inserts/deletes,
	// no-ops, backlog rejections, compactions, and how often the
	// incremental refreshers replayed the delta log versus recomputing.
	// Per-graph snapshot_version / pinned_readers gauges live on the
	// entries in Graphs.
	Updates delta.Stats `json:"updates"`
}

// ResilienceSnapshot is the /metrics "resilience" block, flattening the
// shedder, breaker, retry-budget, and watchdog counters plus the list
// of breakers currently away from the closed state.
type ResilienceSnapshot struct {
	resilience.ShedderStats
	resilience.BreakerStats
	resilience.BudgetStats
	// WatchdogTrips counts queries caught running past deadline+grace;
	// any non-zero value is a runtime bug (the cancellation layer
	// failed to stop a query) and fails the chaos suite.
	WatchdogTrips int64 `json:"watchdog_trips"`
	// Breakers lists every breaker not pristine-closed, with state and
	// (for open ones) time until the next probe.
	Breakers []resilience.BreakerStatus `json:"breakers,omitempty"`
}

// Snapshot captures every counter plus the registry's per-graph memory
// estimates, the query engine's counters (eng may be nil), the
// resilience block assembled by the caller, and the batch collector's
// counters (bat may be nil).
func (m *Metrics) Snapshot(reg *Registry, eng *engine.Engine, res ResilienceSnapshot, bat *batch.Collector) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.InFlight.Value(),
		Admitted:      m.Admitted.Value(),
		Rejected429:   m.Rejected.Value(),
		Algos:         make(map[string]AlgoSnapshot),
	}
	m.mu.Lock()
	for name, a := range m.algos {
		s.Algos[name] = AlgoSnapshot{
			Requests:     a.Requests.Value(),
			Errors:       a.Errors.Value(),
			Timeouts:     a.Timeouts.Value(),
			Panics:       a.Panics.Value(),
			LatencyMsSum: a.LatencyMsSum.Value(),
		}
	}
	if len(m.backends) > 0 {
		s.Backends = make(map[string]int64, len(m.backends))
		for name, b := range m.backends {
			s.Backends[name] = b.Value()
		}
	}
	m.mu.Unlock()
	if reg != nil {
		s.Graphs = reg.List()
		for _, info := range s.Graphs {
			s.GraphBytes += info.MemoryBytes
			s.GraphMappedBytes += info.MappedBytes
		}
		s.Updates = reg.UpdateStats()
	}
	if eng != nil {
		s.Query = eng.Snapshot()
	}
	s.Traversal = core.SnapshotStats()
	s.Scheduler = parallel.SchedulerSnapshot()
	s.Resilience = res
	if bat != nil {
		s.Batch = bat.Stats()
	}
	return s
}
