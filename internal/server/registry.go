// Package server implements ligra-serve's long-running graph analytics
// service: a registry of named resident graphs, a query engine that
// dispatches to the shared algorithm table (internal/algo.Runners) through
// the cancellation layer, bounded admission, and built-in observability
// (request logging, /healthz, /metrics).
//
// The serving model follows the shape that systems moving Ligra-style
// processing online converge on (BLADYG and the streaming-framework
// deployments surveyed by Besta et al.): graphs stay loaded in shared
// memory, queries arrive over an API, and every query is bounded — by a
// deadline (cooperative cancellation from PR 1), by an admission
// semaphore, and by panic containment so one bad query cannot take down
// the process.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ligra/internal/delta"
	"ligra/internal/graph"
	"ligra/internal/server/resilience"
)

// Registry errors. Handlers map these to HTTP statuses.
var (
	// ErrNotFound reports a name with no registered graph.
	ErrNotFound = errors.New("graph not found")
	// ErrConflict reports a load whose name is already registered with a
	// different source specification.
	ErrConflict = errors.New("graph name already registered with a different source")
)

// GraphInfo is the JSON-friendly description of one registered graph.
type GraphInfo struct {
	Name       string    `json:"name"`
	Source     string    `json:"source"`
	Loading    bool      `json:"loading,omitempty"`
	LoadedAt   time.Time `json:"loaded_at"`
	LoadMillis float64   `json:"load_ms,omitempty"`
	Vertices   int       `json:"vertices"`
	Edges      int64     `json:"edges"`
	Symmetric  bool      `json:"symmetric"`
	Weighted   bool      `json:"weighted"`
	// Format names the resident backend: "csr" for the uncompressed CSR
	// representation, "compressed" for heap-resident byte codes,
	// "compressed+mmap" when the byte codes are memory-mapped.
	Format      string `json:"format"`
	MemoryBytes int64  `json:"memory_bytes"`
	// MappedBytes is the size of the backing memory-mapped region (0 for
	// heap-resident graphs); those bytes live in the page cache, not the
	// process heap, so MemoryBytes excludes them.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// DefaultSource is the highest-out-degree vertex, used when a query
	// does not name a source.
	DefaultSource uint32 `json:"default_source"`
	// Generation counts how many times this name has been (re)loaded; it
	// survives eviction, so a replaced graph always carries a higher
	// generation than the one it displaced. Result-cache keys include it,
	// which is what makes a cached result provably from this residency.
	Generation uint64 `json:"generation"`
	// SnapshotVersion is the version of the graph's current snapshot. It
	// starts at Generation and advances through the same per-name counter
	// on every applied /update batch, so versions and load generations
	// form one strictly increasing sequence — a result cached under any
	// version key is provably from exactly that snapshot.
	SnapshotVersion uint64 `json:"snapshot_version"`
	// PinnedReaders is how many in-flight queries currently hold a pin on
	// one of this graph's snapshots.
	PinnedReaders int64 `json:"pinned_readers"`
	// Compacting reports that an update batch is currently materializing
	// a flat CSR snapshot; the graph keeps serving its current snapshot
	// throughout.
	Compacting bool `json:"compacting,omitempty"`
	// DirtyRows is how many adjacency rows the current snapshot overlays
	// on its base (0 once compaction has caught up).
	DirtyRows int `json:"dirty_rows,omitempty"`
}

type regEntry struct {
	// ready is closed when the load (in the goroutine of the first
	// requester) finishes; g/store/err are immutable afterwards. info is
	// republished under Registry.mu when update batches change the
	// graph's shape, so reads of it always take the lock.
	ready  chan struct{}
	source string
	g      graph.View
	// store owns the graph's snapshot versions, pins, and update log;
	// nil while loading and on entries evicted mid-load.
	store *delta.Store
	err   error
	info  GraphInfo
}

// Registry is the set of named resident graphs. Loads of the same name
// and source are single-flight: concurrent requesters share one read, and
// repeat loads return the already-resident graph without touching disk.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	// gens is the per-name load counter behind GraphInfo.Generation. It
	// is never deleted from — an evicted name keeps its counter so a
	// reload gets a strictly larger generation.
	gens map[string]uint64

	// retryBudget/retryCfg, when set, make builds retry transient
	// failures (per resilience.IsTransient) with jittered backoff, so
	// an IO blip during an evict+reload never surfaces to clients. A
	// nil budget means no retries.
	retryBudget *resilience.Budget
	retryCfg    resilience.RetryConfig

	// updatePolicy parameterizes each graph's delta store (group-commit
	// window, pending-op budget, compaction threshold). Set before
	// serving via SetUpdatePolicy.
	updatePolicy delta.Policy
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry), gens: make(map[string]uint64)}
}

// SetLoadRetry arms transient-failure retries for builds. Call before
// serving; it is not synchronized with in-flight loads.
func (r *Registry) SetLoadRetry(budget *resilience.Budget, cfg resilience.RetryConfig) {
	r.retryBudget, r.retryCfg = budget, cfg
}

// RetryBudget exposes the load-retry budget (nil when retries are off).
func (r *Registry) RetryBudget() *resilience.Budget { return r.retryBudget }

// SetUpdatePolicy sets the delta-store policy applied to graphs loaded
// from now on. Call before serving; it is not synchronized with
// in-flight loads.
func (r *Registry) SetUpdatePolicy(p delta.Policy) { r.updatePolicy = p }

// nextGen advances name's generation counter. It backs both load
// generations and snapshot versions, so the two share one strictly
// increasing sequence per name.
func (r *Registry) nextGen(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gens[name]++
	return r.gens[name]
}

// runBuild executes one build, retrying transient failures under the
// registry's budget. ctx bounds the backoff sleeps (the first
// requester's context): if the requester gives up mid-backoff, the
// load fails and the entry is forgotten, so the name stays retryable.
func (r *Registry) runBuild(ctx context.Context, build func() (graph.View, error)) (graph.View, error) {
	if r.retryBudget == nil {
		return build()
	}
	var g graph.View
	err := resilience.Do(ctx, r.retryBudget, r.retryCfg, func() error {
		var err error
		g, err = build()
		return err
	})
	return g, err
}

// Load registers name, building the graph with build if it is not already
// resident. source is the canonical description of where the graph comes
// from: a second load of the same name joins the in-flight (or completed)
// load when the sources match and fails with ErrConflict when they
// differ. The first requester runs build on its own goroutine; everyone
// blocks until the load settles or ctx is done. A failed build is
// forgotten so it can be retried.
func (r *Registry) Load(ctx context.Context, name, source string, build func() (graph.View, error)) (GraphInfo, error) {
	r.mu.Lock()
	if e, ok := r.entries[name]; ok {
		r.mu.Unlock()
		if e.source != source {
			return GraphInfo{}, fmt.Errorf("%w: %q is %s", ErrConflict, name, e.source)
		}
		return r.wait(ctx, e)
	}
	r.gens[name]++
	gen := r.gens[name]
	e := &regEntry{ready: make(chan struct{}), source: source}
	e.info = GraphInfo{Name: name, Source: source, Loading: true, Generation: gen}
	r.entries[name] = e
	r.mu.Unlock()

	start := time.Now()
	g, err := r.runBuild(ctx, build)
	if err != nil {
		e.err = fmt.Errorf("loading %q: %w", name, err)
		r.mu.Lock()
		// Forget the failure, unless an evict+reload already replaced us.
		if r.entries[name] == e {
			delete(r.entries, name)
		}
		r.mu.Unlock()
		close(e.ready)
		return GraphInfo{}, e.err
	}
	e.g = g
	store := delta.NewStore(g, delta.Config{
		Policy:         r.updatePolicy,
		InitialVersion: gen,
		NextVersion:    func() uint64 { return r.nextGen(name) },
	})
	info := describe(name, source, g)
	info.Generation = gen
	info.SnapshotVersion = gen
	info.LoadedAt = start
	info.LoadMillis = float64(time.Since(start).Microseconds()) / 1000
	// Publish the final info under the registry lock: List reads e.info
	// of still-loading entries (the Loading placeholder), so this write
	// must be synchronized with those reads, not just with the ready
	// channel's close. An evict that raced the load wins: the store is
	// released immediately (it can have no pins yet) and the entry stays
	// unregistered.
	r.mu.Lock()
	alive := r.entries[name] == e
	if alive {
		e.store = store
	}
	e.info = info
	r.mu.Unlock()
	if !alive {
		store.Release()
	}
	close(e.ready)
	return info, nil
}

// wait blocks until e settles or ctx is done.
func (r *Registry) wait(ctx context.Context, e *regEntry) (GraphInfo, error) {
	select {
	case <-e.ready:
		r.mu.Lock()
		info := e.info
		r.mu.Unlock()
		return info, e.err
	case <-ctx.Done():
		return GraphInfo{}, ctx.Err()
	}
}

// Get returns the named resident graph's base view, blocking on an
// in-flight load until it settles or ctx is done. The base view does not
// include applied update batches — query paths should Acquire a pinned
// snapshot instead.
func (r *Registry) Get(ctx context.Context, name string) (graph.View, GraphInfo, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, GraphInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	info, err := r.wait(ctx, e)
	if err != nil {
		return nil, info, err
	}
	return e.g, info, nil
}

// Acquire pins the named graph's current snapshot for a reader: the
// returned pin's view stays valid — including its backing mmap — until
// the pin is released, even across eviction. Blocks on an in-flight load
// until it settles or ctx is done.
func (r *Registry) Acquire(ctx context.Context, name string) (*delta.Pin, GraphInfo, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, GraphInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	info, err := r.wait(ctx, e)
	if err != nil {
		return nil, info, err
	}
	r.mu.Lock()
	store := e.store
	r.mu.Unlock()
	if store == nil {
		return nil, GraphInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	pin, err := store.Acquire()
	if err != nil {
		// Evicted between lookup and pin: same answer as never registered.
		return nil, GraphInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return pin, info, nil
}

// Update applies an edge batch to the named graph through its delta
// store's group commit, then refreshes the listing so /graphs and
// /metrics reflect the new snapshot. Fails with ErrNotFound for unknown
// or evicted names and delta.ErrBusy when the update backlog is full.
func (r *Registry) Update(ctx context.Context, name string, ops []delta.EdgeOp) (delta.ApplyResult, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return delta.ApplyResult{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if _, err := r.wait(ctx, e); err != nil {
		return delta.ApplyResult{}, err
	}
	r.mu.Lock()
	store := e.store
	r.mu.Unlock()
	if store == nil {
		return delta.ApplyResult{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	res, err := store.Update(ctx, ops)
	if err != nil {
		if errors.Is(err, delta.ErrReleased) {
			err = fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return res, err
	}
	if res.Version != res.PrevVersion {
		view, _ := store.Current()
		r.mu.Lock()
		// SnapshotVersion orders concurrent refreshes: a commit that
		// settled late must not clobber the listing with older numbers.
		if r.entries[name] == e && res.Version > e.info.SnapshotVersion {
			e.info.SnapshotVersion = res.Version
			e.info.Vertices = res.Vertices
			e.info.Edges = res.Edges
			e.info.Format = "csr"
			if f, ok := view.(interface{ FormatName() string }); ok {
				e.info.Format = f.FormatName()
			}
			if f, ok := view.(interface{ MemoryFootprint() int64 }); ok {
				e.info.MemoryBytes = f.MemoryFootprint()
			}
			if f, ok := view.(interface{ MappedBytes() int64 }); ok {
				e.info.MappedBytes = f.MappedBytes()
			}
		}
		r.mu.Unlock()
	}
	return res, nil
}

// Store returns the named graph's delta store once its load has
// settled, or nil.
func (r *Registry) Store(name string) *delta.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e.store
	}
	return nil
}

// Evict removes the named graph, reporting whether it was registered. An
// in-flight load is unregistered immediately; its requesters still
// receive the load's outcome. The graph's backend is closed (unmapping
// an mmap-backed graph) as soon as the last pinned reader detaches — an
// in-flight query never observes its snapshot disappearing.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	var store *delta.Store
	if ok {
		store = e.store
	}
	r.mu.Unlock()
	if store != nil {
		store.Release()
	}
	return ok
}

// List returns every registered graph (including in-flight loads, marked
// Loading) sorted by name, with live snapshot gauges (version, pinned
// readers, compaction state) filled from each graph's delta store.
func (r *Registry) List() []GraphInfo {
	// e.info is either the Loading placeholder or the final description;
	// both are published under r.mu, so one locked pass copies them
	// race-free (a still-loading entry simply lists as its placeholder).
	// Store gauges are read after unlocking — store methods are never
	// called under r.mu.
	r.mu.Lock()
	infos := make([]GraphInfo, 0, len(r.entries))
	stores := make([]*delta.Store, 0, len(r.entries))
	for _, e := range r.entries {
		infos = append(infos, e.info)
		stores = append(stores, e.store)
	}
	r.mu.Unlock()
	for i, st := range stores {
		if st == nil {
			continue
		}
		g := st.Gauges()
		infos[i].SnapshotVersion = g.Version
		infos[i].PinnedReaders = g.PinnedReaders
		infos[i].Compacting = g.Compacting
		infos[i].DirtyRows = g.DirtyRows
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// UpdateStats aggregates every resident graph's update counters for the
// /metrics "updates" block.
func (r *Registry) UpdateStats() delta.Stats {
	r.mu.Lock()
	stores := make([]*delta.Store, 0, len(r.entries))
	for _, e := range r.entries {
		if e.store != nil {
			stores = append(stores, e.store)
		}
	}
	r.mu.Unlock()
	var total delta.Stats
	for _, st := range stores {
		total.Add(st.Stats())
	}
	return total
}

// TotalMemoryBytes sums the heap footprint of every resident graph.
func (r *Registry) TotalMemoryBytes() int64 {
	var total int64
	for _, info := range r.List() {
		total += info.MemoryBytes
	}
	return total
}

// TotalMappedBytes sums the memory-mapped bytes of every resident graph
// (page-cache residency, reported separately from heap footprint).
func (r *Registry) TotalMappedBytes() int64 {
	var total int64
	for _, info := range r.List() {
		total += info.MappedBytes
	}
	return total
}

// describe builds the registry's listing entry for a loaded graph. The
// registry hosts any graph.View; footprint, backend name, and mmap
// residency come from the optional interfaces both backends implement
// (the CSR *graph.Graph reports format "csr" and no mapped bytes).
func describe(name, source string, g graph.View) GraphInfo {
	info := GraphInfo{
		Name:      name,
		Source:    source,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Symmetric: g.Symmetric(),
		Weighted:  g.Weighted(),
		Format:    "csr",
	}
	if f, ok := g.(interface{ MemoryFootprint() int64 }); ok {
		info.MemoryBytes = f.MemoryFootprint()
	}
	if f, ok := g.(interface{ FormatName() string }); ok {
		info.Format = f.FormatName()
	}
	if f, ok := g.(interface{ MappedBytes() int64 }); ok {
		info.MappedBytes = f.MappedBytes()
	}
	bestDeg := -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d > bestDeg {
			info.DefaultSource, bestDeg = uint32(v), d
		}
	}
	return info
}
