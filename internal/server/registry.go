// Package server implements ligra-serve's long-running graph analytics
// service: a registry of named resident graphs, a query engine that
// dispatches to the shared algorithm table (internal/algo.Runners) through
// the cancellation layer, bounded admission, and built-in observability
// (request logging, /healthz, /metrics).
//
// The serving model follows the shape that systems moving Ligra-style
// processing online converge on (BLADYG and the streaming-framework
// deployments surveyed by Besta et al.): graphs stay loaded in shared
// memory, queries arrive over an API, and every query is bounded — by a
// deadline (cooperative cancellation from PR 1), by an admission
// semaphore, and by panic containment so one bad query cannot take down
// the process.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ligra/internal/graph"
	"ligra/internal/server/resilience"
)

// Registry errors. Handlers map these to HTTP statuses.
var (
	// ErrNotFound reports a name with no registered graph.
	ErrNotFound = errors.New("graph not found")
	// ErrConflict reports a load whose name is already registered with a
	// different source specification.
	ErrConflict = errors.New("graph name already registered with a different source")
)

// GraphInfo is the JSON-friendly description of one registered graph.
type GraphInfo struct {
	Name       string    `json:"name"`
	Source     string    `json:"source"`
	Loading    bool      `json:"loading,omitempty"`
	LoadedAt   time.Time `json:"loaded_at"`
	LoadMillis float64   `json:"load_ms,omitempty"`
	Vertices   int       `json:"vertices"`
	Edges      int64     `json:"edges"`
	Symmetric  bool      `json:"symmetric"`
	Weighted   bool      `json:"weighted"`
	// Format names the resident backend: "csr" for the uncompressed CSR
	// representation, "compressed" for heap-resident byte codes,
	// "compressed+mmap" when the byte codes are memory-mapped.
	Format      string `json:"format"`
	MemoryBytes int64  `json:"memory_bytes"`
	// MappedBytes is the size of the backing memory-mapped region (0 for
	// heap-resident graphs); those bytes live in the page cache, not the
	// process heap, so MemoryBytes excludes them.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// DefaultSource is the highest-out-degree vertex, used when a query
	// does not name a source.
	DefaultSource uint32 `json:"default_source"`
	// Generation counts how many times this name has been (re)loaded; it
	// survives eviction, so a replaced graph always carries a higher
	// generation than the one it displaced. Result-cache keys include it,
	// which is what makes a cached result provably from this residency.
	Generation uint64 `json:"generation"`
}

type regEntry struct {
	// ready is closed when the load (in the goroutine of the first
	// requester) finishes; g/err/info are immutable afterwards.
	ready  chan struct{}
	source string
	g      graph.View
	err    error
	info   GraphInfo
}

// Registry is the set of named resident graphs. Loads of the same name
// and source are single-flight: concurrent requesters share one read, and
// repeat loads return the already-resident graph without touching disk.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	// gens is the per-name load counter behind GraphInfo.Generation. It
	// is never deleted from — an evicted name keeps its counter so a
	// reload gets a strictly larger generation.
	gens map[string]uint64

	// retryBudget/retryCfg, when set, make builds retry transient
	// failures (per resilience.IsTransient) with jittered backoff, so
	// an IO blip during an evict+reload never surfaces to clients. A
	// nil budget means no retries.
	retryBudget *resilience.Budget
	retryCfg    resilience.RetryConfig
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry), gens: make(map[string]uint64)}
}

// SetLoadRetry arms transient-failure retries for builds. Call before
// serving; it is not synchronized with in-flight loads.
func (r *Registry) SetLoadRetry(budget *resilience.Budget, cfg resilience.RetryConfig) {
	r.retryBudget, r.retryCfg = budget, cfg
}

// RetryBudget exposes the load-retry budget (nil when retries are off).
func (r *Registry) RetryBudget() *resilience.Budget { return r.retryBudget }

// runBuild executes one build, retrying transient failures under the
// registry's budget. ctx bounds the backoff sleeps (the first
// requester's context): if the requester gives up mid-backoff, the
// load fails and the entry is forgotten, so the name stays retryable.
func (r *Registry) runBuild(ctx context.Context, build func() (graph.View, error)) (graph.View, error) {
	if r.retryBudget == nil {
		return build()
	}
	var g graph.View
	err := resilience.Do(ctx, r.retryBudget, r.retryCfg, func() error {
		var err error
		g, err = build()
		return err
	})
	return g, err
}

// Load registers name, building the graph with build if it is not already
// resident. source is the canonical description of where the graph comes
// from: a second load of the same name joins the in-flight (or completed)
// load when the sources match and fails with ErrConflict when they
// differ. The first requester runs build on its own goroutine; everyone
// blocks until the load settles or ctx is done. A failed build is
// forgotten so it can be retried.
func (r *Registry) Load(ctx context.Context, name, source string, build func() (graph.View, error)) (GraphInfo, error) {
	r.mu.Lock()
	if e, ok := r.entries[name]; ok {
		r.mu.Unlock()
		if e.source != source {
			return GraphInfo{}, fmt.Errorf("%w: %q is %s", ErrConflict, name, e.source)
		}
		return r.wait(ctx, e)
	}
	r.gens[name]++
	gen := r.gens[name]
	e := &regEntry{ready: make(chan struct{}), source: source}
	e.info = GraphInfo{Name: name, Source: source, Loading: true, Generation: gen}
	r.entries[name] = e
	r.mu.Unlock()

	start := time.Now()
	g, err := r.runBuild(ctx, build)
	if err != nil {
		e.err = fmt.Errorf("loading %q: %w", name, err)
		r.mu.Lock()
		// Forget the failure, unless an evict+reload already replaced us.
		if r.entries[name] == e {
			delete(r.entries, name)
		}
		r.mu.Unlock()
		close(e.ready)
		return GraphInfo{}, e.err
	}
	e.g = g
	info := describe(name, source, g)
	info.Generation = gen
	info.LoadedAt = start
	info.LoadMillis = float64(time.Since(start).Microseconds()) / 1000
	// Publish the final info under the registry lock: List reads e.info
	// of still-loading entries (the Loading placeholder), so this write
	// must be synchronized with those reads, not just with the ready
	// channel's close.
	r.mu.Lock()
	e.info = info
	r.mu.Unlock()
	close(e.ready)
	return info, nil
}

// wait blocks until e settles or ctx is done.
func (r *Registry) wait(ctx context.Context, e *regEntry) (GraphInfo, error) {
	select {
	case <-e.ready:
		return e.info, e.err
	case <-ctx.Done():
		return GraphInfo{}, ctx.Err()
	}
}

// Get returns the named resident graph, blocking on an in-flight load
// until it settles or ctx is done.
func (r *Registry) Get(ctx context.Context, name string) (graph.View, GraphInfo, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, GraphInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if info, err := r.wait(ctx, e); err != nil {
		return nil, info, err
	}
	return e.g, e.info, nil
}

// Evict removes the named graph, reporting whether it was registered. An
// in-flight load is unregistered immediately; its requesters still
// receive the load's outcome.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return false
	}
	delete(r.entries, name)
	return true
}

// List returns every registered graph (including in-flight loads, marked
// Loading) sorted by name.
func (r *Registry) List() []GraphInfo {
	// e.info is either the Loading placeholder or the final description;
	// both are published under r.mu, so one locked pass copies them
	// race-free (a still-loading entry simply lists as its placeholder).
	r.mu.Lock()
	infos := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		infos = append(infos, e.info)
	}
	r.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// TotalMemoryBytes sums the heap footprint of every resident graph.
func (r *Registry) TotalMemoryBytes() int64 {
	var total int64
	for _, info := range r.List() {
		total += info.MemoryBytes
	}
	return total
}

// TotalMappedBytes sums the memory-mapped bytes of every resident graph
// (page-cache residency, reported separately from heap footprint).
func (r *Registry) TotalMappedBytes() int64 {
	var total int64
	for _, info := range r.List() {
		total += info.MappedBytes
	}
	return total
}

// describe builds the registry's listing entry for a loaded graph. The
// registry hosts any graph.View; footprint, backend name, and mmap
// residency come from the optional interfaces both backends implement
// (the CSR *graph.Graph reports format "csr" and no mapped bytes).
func describe(name, source string, g graph.View) GraphInfo {
	info := GraphInfo{
		Name:      name,
		Source:    source,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Symmetric: g.Symmetric(),
		Weighted:  g.Weighted(),
		Format:    "csr",
	}
	if f, ok := g.(interface{ MemoryFootprint() int64 }); ok {
		info.MemoryBytes = f.MemoryFootprint()
	}
	if f, ok := g.(interface{ FormatName() string }); ok {
		info.Format = f.FormatName()
	}
	if f, ok := g.(interface{ MappedBytes() int64 }); ok {
		info.MappedBytes = f.MappedBytes()
	}
	bestDeg := -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d > bestDeg {
			info.DefaultSource, bestDeg = uint32(v), d
		}
	}
	return info
}
