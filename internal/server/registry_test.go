package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ligra/internal/gen"
	"ligra/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(8, 8, gen.PBBSRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLoadSingleFlight proves concurrent loads of the same name+source do
// one build: N racers all succeed, the builder runs once, and everyone
// sees the same graph.
func TestLoadSingleFlight(t *testing.T) {
	r := NewRegistry()
	g := testGraph(t)
	var builds atomic.Int64
	release := make(chan struct{})
	build := func() (graph.View, error) {
		builds.Add(1)
		<-release // hold the load open until every racer has joined
		return g, nil
	}

	const racers = 8
	var wg sync.WaitGroup
	infos := make([]GraphInfo, racers)
	errs := make([]error, racers)
	var started sync.WaitGroup
	started.Add(racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			infos[i], errs[i] = r.Load(context.Background(), "g", "src", build)
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the racers reach Load
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if infos[i].Vertices != g.NumVertices() {
			t.Errorf("racer %d saw %d vertices, want %d", i, infos[i].Vertices, g.NumVertices())
		}
	}
	got, _, err := r.Get(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Error("Get returned a different graph than the one loaded")
	}
}

func TestLoadConflictAndEvict(t *testing.T) {
	r := NewRegistry()
	g := testGraph(t)
	build := func() (graph.View, error) { return g, nil }
	if _, err := r.Load(context.Background(), "g", "src-a", build); err != nil {
		t.Fatal(err)
	}
	// Same source: idempotent, no rebuild needed.
	if _, err := r.Load(context.Background(), "g", "src-a", func() (graph.View, error) {
		t.Error("builder ran for an already-resident graph")
		return g, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Different source: conflict.
	if _, err := r.Load(context.Background(), "g", "src-b", build); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if !r.Evict("g") {
		t.Fatal("evict of resident graph reported absent")
	}
	if r.Evict("g") {
		t.Fatal("second evict reported present")
	}
	if _, _, err := r.Get(context.Background(), "g"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	// After evict, the conflicting source can load.
	if _, err := r.Load(context.Background(), "g", "src-b", build); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFailureIsRetryable(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	if _, err := r.Load(context.Background(), "g", "src", func() (graph.View, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	g := testGraph(t)
	if _, err := r.Load(context.Background(), "g", "src", func() (graph.View, error) {
		return g, nil
	}); err != nil {
		t.Fatalf("retry after failed load: %v", err)
	}
}

func TestListSortedWithMemory(t *testing.T) {
	r := NewRegistry()
	g := testGraph(t)
	for _, name := range []string{"zeta", "alpha"} {
		if _, err := r.Load(context.Background(), name, "src", func() (graph.View, error) { return g, nil }); err != nil {
			t.Fatal(err)
		}
	}
	infos := r.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "zeta" {
		t.Fatalf("List = %+v, want alpha then zeta", infos)
	}
	if infos[0].MemoryBytes <= 0 {
		t.Error("memory estimate missing")
	}
	if total := r.TotalMemoryBytes(); total != infos[0].MemoryBytes+infos[1].MemoryBytes {
		t.Errorf("TotalMemoryBytes = %d", total)
	}
}
