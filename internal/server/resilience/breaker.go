package resilience

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is one circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// decides between closed and open.
	BreakerHalfOpen BreakerState = "half-open"
)

// Outcome classifies a finished execution for the breaker.
type Outcome int

const (
	// OutcomeSuccess: the execution completed; resets the
	// consecutive-failure streak and closes a half-open breaker.
	OutcomeSuccess Outcome = iota
	// OutcomeFailure: a contained panic or a deadline blow-through —
	// the failure classes that, repeated, mean the combination is
	// pathological on this replica.
	OutcomeFailure
	// OutcomeAborted: the execution ended for reasons that say nothing
	// either way (client disconnect, drain cancellation, bad query
	// input). Releases a half-open probe without moving the state
	// machine or the failure streak.
	OutcomeAborted
)

// BreakerKey identifies one breaker: failures are tracked per
// (algorithm, graph) because that is the granularity at which queries
// go pathological — PageRank on one adversarial graph must not take
// BFS, or PageRank on every other graph, down with it.
type BreakerKey struct {
	Algo  string `json:"algo"`
	Graph string `json:"graph"`
}

// breaker is one key's state machine. All fields are guarded by the
// owning Breakers' mutex.
type breaker struct {
	state    BreakerState
	fails    int       // consecutive OutcomeFailure count
	openedAt time.Time // when state last became open
	probing  bool      // a half-open probe is in flight
}

// Breakers is the per-(algorithm, graph) circuit-breaker table.
//
// State machine per key: closed → (threshold consecutive failures) →
// open → (cooldown elapses, next Allow becomes the probe) → half-open →
// (probe succeeds → closed | probe fails → open, cooldown restarts).
// A success in any state resets the consecutive-failure count.
type Breakers struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[BreakerKey]*breaker

	opened atomic.Int64 // cumulative closed/half-open → open transitions
	probes atomic.Int64 // cumulative half-open probes granted
}

// NewBreakers builds the table. threshold is the consecutive-failure
// count that opens a breaker (<= 0 disables breaking entirely);
// cooldown is how long an open breaker waits before admitting a probe
// (<= 0 selects 5s).
func NewBreakers(threshold int, cooldown time.Duration) *Breakers {
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breakers{threshold: threshold, cooldown: cooldown, m: make(map[BreakerKey]*breaker)}
}

// Enabled reports whether breaking is active.
func (b *Breakers) Enabled() bool { return b != nil && b.threshold > 0 }

// Allow reports whether a request for key may execute. When it returns
// false the request must fail fast; retryAfter is how long until the
// breaker will next admit a probe. When it returns true the caller must
// report the execution's Outcome via Record, passing back the probe
// flag: a true probe is the one half-open execution the state machine
// is waiting on, and only its Record releases the probe slot (a stale
// request admitted before the breaker opened must not release a probe
// it does not hold).
func (b *Breakers) Allow(key BreakerKey) (ok, probe bool, retryAfter time.Duration) {
	if !b.Enabled() {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br, exists := b.m[key]
	if !exists || br.state == BreakerClosed {
		return true, false, 0
	}
	if br.state == BreakerOpen {
		if wait := b.cooldown - time.Since(br.openedAt); wait > 0 {
			return false, false, wait
		}
		br.state = BreakerHalfOpen
		br.probing = false
	}
	// Half-open: admit exactly one probe at a time.
	if br.probing {
		return false, false, b.cooldown
	}
	br.probing = true
	b.probes.Add(1)
	return true, true, 0
}

// Record reports how an execution for key ended; probe must be the
// flag the matching Allow returned, so that only the actual half-open
// probe releases the probe slot. Callers report every allowed request
// exactly once — an execution that proved nothing (cached or coalesced
// reply, client disconnect, client-chosen short deadline) reports
// OutcomeAborted, which settles the probe slot without moving the
// state machine or the failure streak. Skipping Record instead would
// leak a probe slot and wedge the breaker half-open forever.
func (b *Breakers) Record(key BreakerKey, outcome Outcome, probe bool) {
	if !b.Enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		if outcome != OutcomeFailure {
			return // nothing to track until the first failure
		}
		br = &breaker{state: BreakerClosed}
		b.m[key] = br
	}
	if probe {
		br.probing = false
	}
	switch outcome {
	case OutcomeSuccess:
		br.fails = 0
		if br.state != BreakerClosed {
			br.state = BreakerClosed
		}
	case OutcomeFailure:
		br.fails++
		if br.state == BreakerHalfOpen && probe {
			// The probe failed: straight back to open, cooldown restarts.
			br.state = BreakerOpen
			br.openedAt = time.Now()
			b.opened.Add(1)
		} else if br.state == BreakerClosed && br.fails >= b.threshold {
			br.state = BreakerOpen
			br.openedAt = time.Now()
			b.opened.Add(1)
		}
	case OutcomeAborted:
		// Only the probe slot (if held) was released; the state machine
		// and the failure streak hold.
	}
}

// BreakerStatus is one breaker's externally visible state, for /healthz
// and /metrics.
type BreakerStatus struct {
	BreakerKey
	State BreakerState `json:"state"`
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// RetryAfterMs, for open breakers, is the time until a probe is
	// admitted.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// States lists every breaker not in the pristine closed state (closed
// with no failure streak is dropped — the table would otherwise grow
// one permanent entry per combination ever to fail once).
func (b *Breakers) States() []BreakerStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	out := make([]BreakerStatus, 0, len(b.m))
	for key, br := range b.m {
		if br.state == BreakerClosed && br.fails == 0 {
			continue
		}
		st := BreakerStatus{BreakerKey: key, State: br.state, ConsecutiveFailures: br.fails}
		if br.state == BreakerOpen {
			if wait := b.cooldown - time.Since(br.openedAt); wait > 0 {
				st.RetryAfterMs = wait.Milliseconds()
			}
		}
		out = append(out, st)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Algo < out[j].Algo
	})
	return out
}

// OpenCount is the number of breakers currently open or half-open —
// the "degraded" signal for /healthz.
func (b *Breakers) OpenCount() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, br := range b.m {
		if br.state != BreakerClosed {
			n++
		}
	}
	return n
}

// BreakerStats is the breaker table's counter snapshot.
type BreakerStats struct {
	// BreakerOpen counts transitions into the open state (cumulative).
	BreakerOpen int64 `json:"breaker_open"`
	// BreakerHalfopenProbes counts half-open probes granted.
	BreakerHalfopenProbes int64 `json:"breaker_halfopen_probes"`
	// OpenNow is the number of breakers currently open or half-open.
	OpenNow int `json:"open_now"`
}

// Stats snapshots the counters.
func (b *Breakers) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	return BreakerStats{
		BreakerOpen:           b.opened.Load(),
		BreakerHalfopenProbes: b.probes.Load(),
		OpenNow:               b.OpenCount(),
	}
}
