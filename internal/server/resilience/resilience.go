// Package resilience is ligra-serve's overload-protection subsystem:
// the pieces that keep one replica answering — degraded but alive —
// through traffic spikes, pathological queries, and transient faults.
// It is deliberately HTTP-agnostic (the server layer maps decisions to
// status codes and Retry-After headers) so each piece tests in
// isolation and the future ligra-router tier can reuse the same types.
//
// Four components, composed by internal/server:
//
//   - Shedder: adaptive admission. Replaces a fixed queue-or-reject
//     semaphore with a controller that tracks admission queue wait and
//     per-query slot-occupancy latency (EWMAs) and sheds new work once
//     the observed or predicted wait exceeds a service-level target,
//     with a per-tenant fair share so one hot client cannot starve the
//     rest.
//
//   - Breakers: per-(algorithm, graph) circuit breakers. Consecutive
//     panics or timeouts open a breaker; open breakers fail fast;
//     half-open probes close them once the combination behaves again.
//
//   - Watchdog: a deadline auditor. The cancellation layer is supposed
//     to make "query still running long past its deadline" impossible;
//     the watchdog is the component that proves it in production,
//     force-logging a full stack dump and counting a trip when the
//     invariant breaks.
//
//   - Budget + Do: retry-with-budget for transient faults (graph-load
//     IO blips), with jittered exponential backoff under a global
//     token budget so a persistent fault cannot turn into a retry
//     storm.
package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ewmaAlpha weights each new sample at 20% — heavy enough to react to a
// load shift within a handful of queries, light enough that one slow
// outlier does not flip the shedder.
const ewmaAlpha = 0.2

// ShedReason says why Admit refused a query.
type ShedReason string

const (
	// ShedNone: the query was admitted.
	ShedNone ShedReason = ""
	// ShedOverload: the admission controller predicts the queue wait
	// would exceed the service-level target.
	ShedOverload ShedReason = "overload"
	// ShedQueueFull: the query waited the full queue window and no slot
	// freed up.
	ShedQueueFull ShedReason = "queue_full"
	// ShedTenant: the tenant is at or beyond its fair share of slots
	// while the server is saturated and other tenants are active.
	ShedTenant ShedReason = "tenant_share"
	// ShedCancelled: the caller's context ended while queued.
	ShedCancelled ShedReason = "cancelled"
)

// Decision is the outcome of Shedder.Admit. When OK, the caller must
// call Release exactly once after the query finishes; when not OK,
// Reason says why and RetryAfter is the back-off advice to send with
// the 429.
type Decision struct {
	OK         bool
	Reason     ShedReason
	RetryAfter time.Duration
	release    func()
}

// Release frees the admission slot (no-op on a shed decision).
func (d Decision) Release() {
	if d.release != nil {
		d.release()
	}
}

// ShedderConfig parameterizes a Shedder.
type ShedderConfig struct {
	// Capacity is the number of concurrently executing queries.
	Capacity int
	// QueueWait is how long an over-capacity query may wait for a slot.
	QueueWait time.Duration
	// Target is the service-level objective for admission wait: once
	// the observed queue-wait EWMA or the backlog's predicted wait
	// exceeds it, new arrivals are shed immediately instead of queued.
	// <= 0 disables adaptive shedding (the queue window alone decides).
	Target time.Duration
}

// Shedder is the adaptive admission controller. The semaphore bounds
// concurrency exactly as before; what is new is that the controller
// measures how long queries queue and how long they hold a slot, and
// refuses work early — with honest Retry-After advice — once those
// signals say the queue window is a lie.
//
// Recovery is built into the control loop's shape: shedding decisions
// are only consulted when the fast-path acquire fails, so the moment
// load drops and slots free up, arrivals admit instantly and their
// zero-wait samples decay the EWMA back below the target.
type Shedder struct {
	cfg ShedderConfig
	sem chan struct{}

	mu        sync.Mutex
	queueWait float64        // EWMA of admission wait, milliseconds
	latency   float64        // EWMA of slot-occupancy time, milliseconds
	waiting   int            // queries currently queued for a slot
	holding   map[string]int // admitted in-flight queries per tenant
	queued    map[string]int // queued (not yet admitted) queries per tenant

	shedOverload atomic.Int64
	shedQueue    atomic.Int64
	shedTenant   atomic.Int64
}

// NewShedder builds a Shedder; Capacity must be positive.
func NewShedder(cfg ShedderConfig) *Shedder {
	return &Shedder{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Capacity),
		holding: make(map[string]int),
		queued:  make(map[string]int),
	}
}

// Admit decides whether a query from tenant may execute, blocking up to
// the queue window when the server is busy but not (yet) overloaded.
func (s *Shedder) Admit(ctx context.Context, tenant string) Decision {
	// Fast path: a free slot admits anyone — fair share and overload
	// only bind under contention (the controller is work-conserving).
	select {
	case s.sem <- struct{}{}:
		s.recordWait(0)
		return s.admitted(tenant)
	default:
	}

	s.mu.Lock()
	// Fair share: when saturated and another tenant is active (holding
	// a slot or waiting for one), a tenant already holding its share of
	// slots is shed so the freed slots can drain other tenants' queues.
	// A tenant queued behind its own traffic is its own problem; a
	// tenant queued behind someone else's is what this rule prevents.
	if n := s.activeTenantsLocked(tenant); n > 1 {
		share := s.cfg.Capacity / n
		if share < 1 {
			share = 1
		}
		if s.holding[tenant] >= share {
			retry := s.retryAfterLocked()
			s.mu.Unlock()
			s.shedTenant.Add(1)
			return Decision{Reason: ShedTenant, RetryAfter: retry}
		}
	}
	// Overload: shed rather than queue when waits are already past the
	// target, or Little's law over the backlog predicts they will be.
	if t := float64(s.cfg.Target.Milliseconds()); s.cfg.Target > 0 {
		predicted := s.queueWait
		if s.cfg.Capacity > 0 {
			if backlog := float64(s.waiting+1) * s.latency / float64(s.cfg.Capacity); backlog > predicted {
				predicted = backlog
			}
		}
		if predicted > t {
			retry := s.retryAfterLocked()
			s.mu.Unlock()
			s.shedOverload.Add(1)
			return Decision{Reason: ShedOverload, RetryAfter: retry}
		}
	}
	s.waiting++
	s.queued[tenant]++
	s.mu.Unlock()

	start := time.Now()
	var timeout <-chan time.Time
	if s.cfg.QueueWait > 0 {
		t := time.NewTimer(s.cfg.QueueWait)
		defer t.Stop()
		timeout = t.C
	}
	defer func() {
		s.mu.Lock()
		s.waiting--
		if s.queued[tenant]--; s.queued[tenant] <= 0 {
			delete(s.queued, tenant)
		}
		s.mu.Unlock()
	}()
	if timeout == nil {
		// No queue window: the fast path already failed, so shed now.
		s.recordWait(0)
		s.shedQueue.Add(1)
		return Decision{Reason: ShedQueueFull, RetryAfter: s.RetryAfter()}
	}
	select {
	case s.sem <- struct{}{}:
		s.recordWait(time.Since(start))
		return s.admitted(tenant)
	case <-timeout:
		s.recordWait(s.cfg.QueueWait)
		s.shedQueue.Add(1)
		return Decision{Reason: ShedQueueFull, RetryAfter: s.RetryAfter()}
	case <-ctx.Done():
		s.recordWait(time.Since(start))
		return Decision{Reason: ShedCancelled, RetryAfter: s.RetryAfter()}
	}
}

// admitted registers the tenant and builds the OK decision (the slot is
// already held).
func (s *Shedder) admitted(tenant string) Decision {
	s.mu.Lock()
	s.holding[tenant]++
	s.mu.Unlock()
	var once sync.Once
	return Decision{OK: true, release: func() {
		once.Do(func() {
			s.mu.Lock()
			if s.holding[tenant]--; s.holding[tenant] <= 0 {
				delete(s.holding, tenant)
			}
			s.mu.Unlock()
			<-s.sem
		})
	}}
}

// activeTenantsLocked counts distinct tenants holding or waiting for a
// slot, including the given (about-to-queue) one. Caller holds s.mu.
func (s *Shedder) activeTenantsLocked(tenant string) int {
	n := len(s.holding)
	if s.holding[tenant] == 0 && s.queued[tenant] == 0 {
		n++ // the requester itself
	}
	for t := range s.queued {
		if s.holding[t] == 0 {
			n++
		}
	}
	return n
}

// RecordLatency feeds one query's slot-occupancy time into the latency
// EWMA (the drain-rate signal behind the overload prediction).
func (s *Shedder) RecordLatency(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	s.mu.Lock()
	s.latency += ewmaAlpha * (ms - s.latency)
	s.mu.Unlock()
}

func (s *Shedder) recordWait(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	s.mu.Lock()
	s.queueWait += ewmaAlpha * (ms - s.queueWait)
	s.mu.Unlock()
}

// RetryAfter is the back-off advice for a shed query: roughly one
// expected query latency, never less than a second (429 Retry-After has
// one-second resolution).
func (s *Shedder) RetryAfter() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked()
}

func (s *Shedder) retryAfterLocked() time.Duration {
	est := time.Duration(s.latency) * time.Millisecond
	if est < time.Second {
		est = time.Second
	}
	return est
}

// ShedderStats is the shedder's counter snapshot.
type ShedderStats struct {
	// Shed is the total queries refused, split by reason below.
	Shed          int64 `json:"shed"`
	ShedOverload  int64 `json:"shed_overload"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedTenant    int64 `json:"shed_tenant_share"`
	// QueueWaitEwmaMs and LatencyEwmaMs are the live control signals.
	QueueWaitEwmaMs float64 `json:"queue_wait_ewma_ms"`
	LatencyEwmaMs   float64 `json:"latency_ewma_ms"`
	// ActiveTenants is the number of tenants with in-flight queries.
	ActiveTenants int `json:"active_tenants"`
}

// Stats snapshots the counters.
func (s *Shedder) Stats() ShedderStats {
	ov, qf, tn := s.shedOverload.Load(), s.shedQueue.Load(), s.shedTenant.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShedderStats{
		Shed:            ov + qf + tn,
		ShedOverload:    ov,
		ShedQueueFull:   qf,
		ShedTenant:      tn,
		QueueWaitEwmaMs: s.queueWait,
		LatencyEwmaMs:   s.latency,
		ActiveTenants:   len(s.holding),
	}
}
