package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestShedderFastPathAndQueueFull(t *testing.T) {
	s := NewShedder(ShedderConfig{Capacity: 2, QueueWait: 20 * time.Millisecond, Target: time.Second})
	d1 := s.Admit(context.Background(), "a")
	d2 := s.Admit(context.Background(), "a")
	if !d1.OK || !d2.OK {
		t.Fatal("queries within capacity were not admitted")
	}
	// Third same-tenant query: fair share does not bind (single
	// tenant), EWMAs are cold, so it queues the full window and sheds.
	start := time.Now()
	d3 := s.Admit(context.Background(), "a")
	if d3.OK || d3.Reason != ShedQueueFull {
		t.Fatalf("over-capacity query: %+v, want queue_full shed", d3)
	}
	if w := time.Since(start); w < 15*time.Millisecond {
		t.Fatalf("queue_full shed after %v, want the full queue window", w)
	}
	if d3.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", d3.RetryAfter)
	}
	// Release one slot; the next query admits instantly.
	d1.Release()
	d1.Release() // idempotent
	if d4 := s.Admit(context.Background(), "b"); !d4.OK {
		t.Fatalf("query after release: %+v, want admitted", d4)
	} else {
		d4.Release()
	}
	d2.Release()
	st := s.Stats()
	if st.Shed != 1 || st.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v, want exactly one queue_full shed", st)
	}
	if st.ActiveTenants != 0 {
		t.Fatalf("active tenants = %d after all releases, want 0", st.ActiveTenants)
	}
}

func TestShedderOverload(t *testing.T) {
	s := NewShedder(ShedderConfig{Capacity: 1, QueueWait: 50 * time.Millisecond, Target: 10 * time.Millisecond})
	// Teach the controller that queries are slow: latency EWMA far past
	// the target means even one queued query predicts an SLO miss.
	for i := 0; i < 20; i++ {
		s.RecordLatency(500 * time.Millisecond)
	}
	d1 := s.Admit(context.Background(), "a")
	if !d1.OK {
		t.Fatal("first query not admitted")
	}
	defer d1.Release()
	start := time.Now()
	d2 := s.Admit(context.Background(), "a")
	if d2.OK || d2.Reason != ShedOverload {
		t.Fatalf("overloaded admit: %+v, want overload shed", d2)
	}
	if w := time.Since(start); w > 20*time.Millisecond {
		t.Fatalf("overload shed took %v — it must not queue first", w)
	}
	if s.Stats().ShedOverload != 1 {
		t.Fatalf("stats = %+v, want one overload shed", s.Stats())
	}
}

func TestShedderTenantFairShare(t *testing.T) {
	s := NewShedder(ShedderConfig{Capacity: 2, QueueWait: 50 * time.Millisecond, Target: time.Second})
	// Tenant "hog" takes every slot.
	h1 := s.Admit(context.Background(), "hog")
	h2 := s.Admit(context.Background(), "hog")
	if !h1.OK || !h2.OK {
		t.Fatal("hog's first queries not admitted")
	}
	// Tenant "small" shows up: it queues (not tenant-shed), and once a
	// slot frees it gets in.
	got := make(chan Decision, 1)
	go func() {
		got <- s.Admit(context.Background(), "small")
	}()
	time.Sleep(5 * time.Millisecond) // let small start queueing
	// Now the hog asks for more while another tenant is active: with 2
	// tenants its fair share is 1 slot, it holds 2, so it is shed
	// immediately.
	start := time.Now()
	h3 := s.Admit(context.Background(), "hog")
	if h3.OK || h3.Reason != ShedTenant {
		t.Fatalf("hog over fair share: %+v, want tenant_share shed", h3)
	}
	if w := time.Since(start); w > 20*time.Millisecond {
		t.Fatalf("tenant shed took %v — it must not queue first", w)
	}
	h1.Release()
	d := <-got
	if !d.OK {
		t.Fatalf("small tenant's queued query: %+v, want admitted after hog released", d)
	}
	d.Release()
	h2.Release()
	if st := s.Stats(); st.ShedTenant != 1 {
		t.Fatalf("stats = %+v, want one tenant_share shed", st)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreakers(3, 30*time.Millisecond)
	key := BreakerKey{Algo: "bfs", Graph: "g"}

	// Two failures: still closed (threshold is 3).
	for i := 0; i < 2; i++ {
		if ok, probe, _ := b.Allow(key); !ok || probe {
			t.Fatalf("closed breaker refused request %d (or marked it a probe)", i)
		}
		b.Record(key, OutcomeFailure, false)
	}
	// A success resets the streak.
	b.Record(key, OutcomeSuccess, false)
	for i := 0; i < 2; i++ {
		b.Record(key, OutcomeFailure, false)
	}
	if ok, _, _ := b.Allow(key); !ok {
		t.Fatal("breaker opened below threshold (success did not reset the streak)")
	}
	// Third consecutive failure opens it.
	b.Record(key, OutcomeFailure, false)
	ok, _, retry := b.Allow(key)
	if ok {
		t.Fatal("open breaker allowed a request")
	}
	if retry <= 0 || retry > 30*time.Millisecond {
		t.Fatalf("open breaker retryAfter = %v, want (0, cooldown]", retry)
	}
	if got := b.Stats(); got.BreakerOpen != 1 || got.OpenNow != 1 {
		t.Fatalf("stats after open = %+v", got)
	}
	// Other keys are unaffected.
	if ok, _, _ := b.Allow(BreakerKey{Algo: "pagerank", Graph: "g"}); !ok {
		t.Fatal("unrelated breaker tripped")
	}

	// After the cooldown: exactly one probe is admitted; a second
	// request is refused while the probe is in flight.
	time.Sleep(35 * time.Millisecond)
	if ok, probe, _ := b.Allow(key); !ok || !probe {
		t.Fatal("cooled-down breaker did not admit a probe")
	}
	if ok, _, _ := b.Allow(key); ok {
		t.Fatal("second probe admitted while the first is in flight")
	}
	// A stale request admitted before the breaker opened settles while
	// the probe is in flight: it must not release the probe's slot.
	b.Record(key, OutcomeAborted, false)
	if ok, _, _ := b.Allow(key); ok {
		t.Fatal("a stale non-probe record released the in-flight probe's slot")
	}
	// Probe fails: straight back to open.
	b.Record(key, OutcomeFailure, true)
	if ok, _, _ := b.Allow(key); ok {
		t.Fatal("breaker closed after a failed probe")
	}
	time.Sleep(35 * time.Millisecond)
	if ok, probe, _ := b.Allow(key); !ok || !probe {
		t.Fatal("second probe window did not open")
	}
	// An aborted probe (cached reply, client disconnect, short
	// client-chosen deadline) releases the slot without closing the
	// breaker; the very next request becomes the new probe.
	b.Record(key, OutcomeAborted, true)
	if ok, probe, _ := b.Allow(key); !ok || !probe {
		t.Fatal("aborted probe did not release the probe slot")
	}
	// Successful probe closes it.
	b.Record(key, OutcomeSuccess, true)
	if ok, probe, _ := b.Allow(key); !ok || probe {
		t.Fatal("breaker not closed after successful probe")
	}
	if st := b.Stats(); st.OpenNow != 0 || st.BreakerHalfopenProbes < 3 {
		t.Fatalf("final stats = %+v, want closed with >= 3 probes", st)
	}
	if got := b.States(); len(got) != 0 {
		t.Fatalf("States() after recovery = %+v, want empty", got)
	}
}

func TestBreakersDisabled(t *testing.T) {
	b := NewBreakers(0, time.Second)
	key := BreakerKey{Algo: "bfs", Graph: "g"}
	for i := 0; i < 100; i++ {
		b.Record(key, OutcomeFailure, false)
	}
	if ok, _, _ := b.Allow(key); !ok {
		t.Fatal("disabled breakers refused a request")
	}
	var nilB *Breakers
	if ok, _, _ := nilB.Allow(key); !ok {
		t.Fatal("nil Breakers refused a request")
	}
	nilB.Record(key, OutcomeFailure, false)
}

func TestWatchdogTripAndClear(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	log := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		logged = append(logged, string(p))
		mu.Unlock()
		return len(p), nil
	}), nil))
	w := NewWatchdog(10*time.Millisecond, log)

	// A query finishing in time never trips.
	id := w.Watch("g", "bfs", time.Now().Add(20*time.Millisecond))
	w.Done(id)
	time.Sleep(50 * time.Millisecond)
	if w.Trips() != 0 {
		t.Fatalf("trips = %d after a clean query, want 0", w.Trips())
	}

	// An unbounded query is not watched at all.
	if id := w.Watch("g", "bfs", time.Time{}); id != 0 {
		t.Fatalf("zero-deadline Watch returned id %d, want 0", id)
	}

	// A query stuck past deadline+grace trips exactly once, with a
	// stack dump in the log.
	id = w.Watch("g", "pagerank", time.Now().Add(5*time.Millisecond))
	deadline := time.Now().Add(2 * time.Second)
	for w.Trips() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", w.Trips())
	}
	time.Sleep(50 * time.Millisecond)
	if w.Trips() != 1 {
		t.Fatalf("trips = %d after settling, want exactly 1 (no re-trip)", w.Trips())
	}
	w.Done(id)
	mu.Lock()
	defer mu.Unlock()
	if len(logged) == 0 {
		t.Fatal("trip produced no log line")
	}
	joined := fmt.Sprint(logged)
	for _, want := range []string{"WATCHDOG TRIP", "pagerank", "goroutine"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trip log missing %q", want)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestRetryDo(t *testing.T) {
	t.Run("transient failures retry to success", func(t *testing.T) {
		budget := NewBudget(10, 1000)
		calls := 0
		err := Do(context.Background(), budget, RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond}, func() error {
			calls++
			if calls < 3 {
				return MarkTransient(errors.New("blip"))
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Fatalf("err = %v, calls = %d; want success on call 3", err, calls)
		}
		if st := budget.Stats(); st.RetryBudgetSpent != 2 {
			t.Fatalf("budget stats = %+v, want 2 spent", st)
		}
	})
	t.Run("permanent errors never retry", func(t *testing.T) {
		calls := 0
		perm := errors.New("no such file")
		err := Do(context.Background(), NewBudget(10, 1000), RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond}, func() error {
			calls++
			return perm
		})
		if !errors.Is(err, perm) || calls != 1 {
			t.Fatalf("err = %v, calls = %d; want single attempt", err, calls)
		}
	})
	t.Run("dry budget stops retries", func(t *testing.T) {
		budget := NewBudget(1, 0.0001)
		calls := 0
		err := Do(context.Background(), budget, RetryConfig{MaxAttempts: 10, BaseDelay: time.Millisecond}, func() error {
			calls++
			return MarkTransient(errors.New("blip"))
		})
		if err == nil || calls != 2 {
			t.Fatalf("err = %v, calls = %d; want 2 attempts (1 budgeted retry)", err, calls)
		}
		if st := budget.Stats(); st.RetryBudgetDenied != 1 {
			t.Fatalf("budget stats = %+v, want 1 denied", st)
		}
	})
	t.Run("nil budget means no retries", func(t *testing.T) {
		calls := 0
		_ = Do(context.Background(), nil, RetryConfig{MaxAttempts: 10, BaseDelay: time.Millisecond}, func() error {
			calls++
			return MarkTransient(errors.New("blip"))
		})
		if calls != 1 {
			t.Fatalf("calls = %d, want 1 with a nil budget", calls)
		}
	})
	t.Run("cancelled ctx stops the backoff", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		calls := 0
		start := time.Now()
		_ = Do(ctx, NewBudget(10, 1000), RetryConfig{MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second}, func() error {
			calls++
			return MarkTransient(errors.New("blip"))
		})
		if calls != 1 || time.Since(start) > time.Second {
			t.Fatalf("calls = %d after %v; want immediate stop", calls, time.Since(start))
		}
	})
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{MarkTransient(errors.New("blip")), true},
		{fmt.Errorf("wrapped: %w", MarkTransient(errors.New("blip"))), true},
		{io.ErrUnexpectedEOF, true},
		{fmt.Errorf("loading: %w", io.ErrUnexpectedEOF), true},
		{fs.ErrNotExist, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
