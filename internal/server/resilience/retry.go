package resilience

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TransientError marks an error as retryable: a fault that is expected
// to clear on its own (an IO blip during an evict+reload, an NFS
// hiccup), as opposed to a permanent one (file not found, parse error)
// that retrying can only amplify.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err as transient (nil stays nil).
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is worth retrying: explicitly marked
// transient, self-declared temporary (net errors), or a truncated read
// (io.ErrUnexpectedEOF — the shape of reading a file mid-replacement).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF)
}

// Budget is a token bucket shared by every retry loop in the server: a
// retry spends one token, and when the bucket is dry failures surface
// immediately instead of retrying. The budget is what keeps a
// persistent fault (disk gone, not blipping) from turning every
// request into MaxAttempts requests — a self-inflicted retry storm.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	refill float64 // tokens per second
	last   time.Time

	spent  atomic.Int64
	denied atomic.Int64
}

// NewBudget builds a budget holding up to max tokens, refilling at
// refillPerSec (<= 0 selects max/10 per second, i.e. a drained budget
// fully recovers in ten seconds). max <= 0 returns nil: a nil *Budget
// means no retries at all.
func NewBudget(max float64, refillPerSec float64) *Budget {
	if max <= 0 {
		return nil
	}
	if refillPerSec <= 0 {
		refillPerSec = max / 10
	}
	return &Budget{tokens: max, max: max, refill: refillPerSec, last: time.Now()}
}

// Take spends one token, reporting whether the budget allowed it.
// A nil budget never allows.
func (b *Budget) Take() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.refill
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.last = now
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if ok {
		b.spent.Add(1)
	} else {
		b.denied.Add(1)
	}
	return ok
}

// BudgetStats is the budget's counter snapshot.
type BudgetStats struct {
	// RetryBudgetSpent counts retries the budget paid for.
	RetryBudgetSpent int64 `json:"retry_budget_spent"`
	// RetryBudgetDenied counts retries refused because the bucket was dry.
	RetryBudgetDenied int64 `json:"retry_budget_denied"`
}

// Stats snapshots the counters (nil budget snapshots to zero).
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	return BudgetStats{RetryBudgetSpent: b.spent.Load(), RetryBudgetDenied: b.denied.Load()}
}

// RetryConfig shapes a Do loop's backoff.
type RetryConfig struct {
	// MaxAttempts bounds total attempts (first try included); <= 1
	// means no retries.
	MaxAttempts int
	// BaseDelay is the first backoff; each further retry doubles it,
	// capped at MaxDelay. Every delay is jittered to [d/2, d) so
	// synchronized failures do not retry in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// Do runs fn, retrying transient failures (per IsTransient) with
// jittered exponential backoff while attempts remain, the budget grants
// tokens, and ctx is alive. The returned error is the last attempt's.
func Do(ctx context.Context, budget *Budget, cfg RetryConfig, fn func() error) error {
	delay := cfg.BaseDelay
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	maxDelay := cfg.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !IsTransient(err) || attempt >= cfg.MaxAttempts {
			return err
		}
		if !budget.Take() {
			return err
		}
		// Jitter to [delay/2, delay).
		d := delay/2 + rand.N(delay/2+1)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return err
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}
