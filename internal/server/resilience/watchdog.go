package resilience

import (
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog audits the deadline invariant: the cancellation layer
// (chunk-granularity context checks in every parallel primitive) is
// supposed to make a query that keeps running long past its deadline
// impossible. The watchdog is the component that proves it — each
// deadline-bearing query registers on entry and deregisters on exit,
// and a query still registered at deadline+grace trips the watchdog:
// a full all-goroutine stack dump is force-logged (the evidence needed
// to find the non-cooperative loop) and a trip counter increments. The
// chaos suite asserts the counter stays at zero; a non-zero value in
// production is a bug report against the runtime, not noise.
//
// The watchdog runs no persistent goroutine: a timer is scheduled only
// while deadline-bearing queries are in flight and re-arms itself for
// the next-soonest trip time, so an idle server holds zero watchdog
// resources (and goroutine-leak checks stay exact).
type Watchdog struct {
	grace time.Duration
	log   *slog.Logger
	trips atomic.Int64

	mu      sync.Mutex
	nextID  uint64
	running map[uint64]*watchEntry
	timer   *time.Timer
	timerAt time.Time
}

type watchEntry struct {
	graph, algo string
	start       time.Time
	deadline    time.Time
	tripped     bool
}

// NewWatchdog builds a watchdog; grace is how far past its deadline a
// query may run before tripping (<= 0 selects 2s) and log receives the
// trip reports (nil uses slog's default).
func NewWatchdog(grace time.Duration, log *slog.Logger) *Watchdog {
	if grace <= 0 {
		grace = 2 * time.Second
	}
	if log == nil {
		log = slog.Default()
	}
	return &Watchdog{grace: grace, log: log, running: make(map[uint64]*watchEntry)}
}

// Watch registers one executing query. deadline is the query's context
// deadline; a zero deadline (unbounded query) is not watched and
// returns 0. The returned id must be passed to Done when the query's
// execution returns, tripped or not.
func (w *Watchdog) Watch(graph, algo string, deadline time.Time) uint64 {
	if w == nil || deadline.IsZero() {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	id := w.nextID
	w.running[id] = &watchEntry{graph: graph, algo: algo, start: time.Now(), deadline: deadline}
	w.scheduleLocked()
	return id
}

// Done deregisters a query (id 0, from an unwatched query, is a no-op).
func (w *Watchdog) Done(id uint64) {
	if w == nil || id == 0 {
		return
	}
	w.mu.Lock()
	delete(w.running, id)
	if len(w.running) == 0 && w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	w.mu.Unlock()
}

// Trips is the cumulative trip count.
func (w *Watchdog) Trips() int64 {
	if w == nil {
		return 0
	}
	return w.trips.Load()
}

// scheduleLocked (re-)arms the timer for the earliest untripped trip
// time. Caller holds w.mu.
func (w *Watchdog) scheduleLocked() {
	var earliest time.Time
	for _, e := range w.running {
		if e.tripped {
			continue
		}
		at := e.deadline.Add(w.grace)
		if earliest.IsZero() || at.Before(earliest) {
			earliest = at
		}
	}
	if earliest.IsZero() {
		if w.timer != nil {
			w.timer.Stop()
			w.timer = nil
		}
		return
	}
	if w.timer != nil && w.timerAt.Equal(earliest) {
		return
	}
	if w.timer != nil {
		w.timer.Stop()
	}
	w.timerAt = earliest
	d := time.Until(earliest)
	if d < 0 {
		d = 0
	}
	w.timer = time.AfterFunc(d, w.scan)
}

// scan trips every query past deadline+grace and re-arms for the next.
func (w *Watchdog) scan() {
	now := time.Now()
	var tripped []*watchEntry
	w.mu.Lock()
	w.timer = nil
	for _, e := range w.running {
		if !e.tripped && now.After(e.deadline.Add(w.grace)) {
			e.tripped = true
			tripped = append(tripped, e)
		}
	}
	w.scheduleLocked()
	w.mu.Unlock()

	if len(tripped) == 0 {
		return
	}
	// One dump covers every trip in this scan: the full all-goroutine
	// stack is the point — it shows where the non-cooperative work is
	// actually stuck.
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for _, e := range tripped {
		w.trips.Add(1)
		w.log.Error("WATCHDOG TRIP: query running past deadline+grace — cancellation layer failed to stop it",
			"graph", e.graph,
			"algo", e.algo,
			"running_for", time.Since(e.start).String(),
			"past_deadline", time.Since(e.deadline).String(),
			"grace", w.grace.String(),
			"stack", string(buf[:n]),
		)
	}
}
