package server

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"ligra/internal/server/engine"
)

// Config parameterizes a Server.
type Config struct {
	// MaxConcurrent bounds the number of queries executing at once; 0
	// selects 2*GOMAXPROCS. Queries beyond the bound wait up to QueueWait
	// for a slot and are then rejected with 429.
	MaxConcurrent int
	// QueueWait is how long an over-admission query may wait for a slot
	// before 429; 0 rejects immediately.
	QueueWait time.Duration
	// DefaultTimeout applies to queries that set no timeout_ms; 0 means
	// unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-query timeout_ms a client may request; 0
	// selects 60s.
	MaxTimeout time.Duration
	// CacheBytes bounds the query result cache's estimated footprint; 0
	// disables result caching (single-flight coalescing stays on).
	CacheBytes int64
	// MaxQueryProcs caps the worker goroutines one query may lease from
	// the parallelism governor; 0 selects GOMAXPROCS (a lone query still
	// uses the whole machine; concurrent queries share it).
	MaxQueryProcs int
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 60 * time.Second
}

// Server is the ligra-serve service: registry + query engine + metrics.
// Create one with New, mount Handler on an http.Server, and on shutdown
// call StartDrain (stop accepting queries), then http.Server.Shutdown,
// then CancelInflight (cooperatively cancel whatever drain did not
// finish).
type Server struct {
	cfg      Config
	log      *slog.Logger
	reg      *Registry
	metrics  *Metrics
	engine   *engine.Engine
	sem      chan struct{}
	draining atomic.Bool

	// baseCtx is the parent of every query context; CancelInflight
	// cancels it, stopping cancellable algorithms within one chunk.
	baseCtx        context.Context
	cancelInflight context.CancelFunc

	mux *http.ServeMux
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		log:     logger,
		reg:     NewRegistry(),
		metrics: NewMetrics(),
		engine: engine.New(engine.NewCache(cfg.CacheBytes),
			engine.NewGovernor(runtime.GOMAXPROCS(0), cfg.MaxQueryProcs)),
		sem: make(chan struct{}, cfg.maxConcurrent()),
	}
	s.baseCtx, s.cancelInflight = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Registry exposes the graph registry (cmd/ligra-serve preloads through
// it; tests inspect it).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the counter set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Engine exposes the query engine (cache + coalescer + governor).
func (s *Server) Engine() *engine.Engine { return s.engine }

// Handler returns the root handler: the API mux wrapped in request
// logging.
func (s *Server) Handler() http.Handler {
	return s.logRequests(s.mux)
}

// StartDrain puts the server into draining mode: /healthz reports 503 (so
// load balancers stop routing here) and new loads/queries are refused
// with 503, while in-flight queries keep running. Safe to call more than
// once.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Info("drain started")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CancelInflight cancels the context under every executing query;
// cancellable algorithms stop within roughly one chunk of parallel work
// and their requests complete with 504 partial results. Call after the
// drain grace period has elapsed.
func (s *Server) CancelInflight() {
	s.log.Info("cancelling in-flight queries")
	s.cancelInflight()
}

// admit acquires an admission slot, waiting up to QueueWait. It reports
// whether the query may proceed; the caller must release() exactly once
// when it did.
func (s *Server) admit(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	if s.cfg.QueueWait <= 0 {
		return false
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (s *Server) release() { <-s.sem }

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// logRequests emits one structured log line per request.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}
