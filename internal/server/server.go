package server

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"ligra/internal/delta"
	"ligra/internal/server/batch"
	"ligra/internal/server/engine"
	"ligra/internal/server/resilience"
)

// Config parameterizes a Server.
type Config struct {
	// MaxConcurrent bounds the number of queries executing at once; 0
	// selects 2*GOMAXPROCS. Queries beyond the bound wait up to QueueWait
	// for a slot and are then rejected with 429.
	MaxConcurrent int
	// QueueWait is how long an over-admission query may wait for a slot
	// before 429; 0 rejects immediately.
	QueueWait time.Duration
	// DefaultTimeout applies to queries that set no timeout_ms; 0 means
	// unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-query timeout_ms a client may request; 0
	// selects 60s.
	MaxTimeout time.Duration
	// CacheBytes bounds the query result cache's estimated footprint; 0
	// disables result caching (single-flight coalescing stays on).
	CacheBytes int64
	// MaxQueryProcs caps the worker goroutines one query may lease from
	// the parallelism governor; 0 selects GOMAXPROCS (a lone query still
	// uses the whole machine; concurrent queries share it).
	MaxQueryProcs int
	// BatchWindow is how long the first batchable query (bfs, reach,
	// landmarks) waits for companions before its shared ClusterBFS sweep
	// fires; 0 selects 2ms; negative disables batching entirely (every
	// query goes through the engine alone).
	BatchWindow time.Duration
	// BatchMax caps the query slots per shared sweep; 0 selects 64,
	// which is also the hard ceiling (one visit-word bit per slot).
	BatchMax int

	// ShedTarget is the service-level objective for admission queue
	// wait: once observed waits (EWMA) or the backlog's predicted wait
	// exceed it, new queries are shed immediately with 429 +
	// Retry-After instead of queued. 0 selects 1s; negative disables
	// adaptive shedding (the queue window alone decides).
	ShedTarget time.Duration
	// BreakerThreshold is the consecutive panic/timeout count that opens
	// a per-(algorithm, graph) circuit breaker; 0 selects 5; negative
	// disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe; 0 selects 5s.
	BreakerCooldown time.Duration
	// WatchdogGrace is how far past its deadline a query may keep
	// running before the watchdog trips (stack dump + counter); 0
	// selects 2s; negative disables the watchdog.
	WatchdogGrace time.Duration
	// RetryBudget is the token budget for transient graph-load retries
	// (each retry spends one token; the bucket refills over ~10s); 0
	// selects 10; negative disables load retries.
	RetryBudget int
	// UpdateWindow is the group-commit window for /update batches: the
	// first writer waits this long for companions so a burst of small
	// updates lands as one snapshot. 0 selects 5ms; negative applies
	// each request immediately (concurrent writers still coalesce behind
	// the serialized apply).
	UpdateWindow time.Duration
	// UpdateMaxPending caps the edge ops buffered across forming update
	// commits; past it /update rejects with 429 + Retry-After. 0 selects
	// the delta-store default (1<<20).
	UpdateMaxPending int
	// CompactEvery is the churn threshold (effective ops overlaid on the
	// base snapshot) past which an update commit materializes a flat CSR
	// snapshot. 0 selects max(4096, |E|/8); negative disables
	// compaction.
	CompactEvery int64
	// UpdateHistoryDepth is how many applied update batches each graph
	// keeps for incremental-recomputation replay. 0 selects 8; negative
	// keeps none (every refresh recomputes in full).
	UpdateHistoryDepth int

	// TrustTenantHeader honors the X-Tenant request header as the
	// tenant identity for fair-share shedding. The header is
	// unauthenticated: enable it only when a trusted gateway in front
	// of this server sets (or strips) it, because a client who can
	// reach the server directly can rotate tenant values to defeat
	// fair-share accounting, or impersonate a victim tenant to get it
	// shed. When false (the default), tenants are identified by client
	// IP and the header is ignored.
	TrustTenantHeader bool

	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 60 * time.Second
}

func (c Config) shedTarget() time.Duration {
	switch {
	case c.ShedTarget > 0:
		return c.ShedTarget
	case c.ShedTarget < 0:
		return 0 // adaptive shedding off
	default:
		return time.Second
	}
}

func (c Config) breakerThreshold() int {
	switch {
	case c.BreakerThreshold > 0:
		return c.BreakerThreshold
	case c.BreakerThreshold < 0:
		return 0 // breakers off
	default:
		return 5
	}
}

func (c Config) watchdogGrace() time.Duration {
	switch {
	case c.WatchdogGrace > 0:
		return c.WatchdogGrace
	case c.WatchdogGrace < 0:
		return 0 // watchdog off
	default:
		return 2 * time.Second
	}
}

func (c Config) batchWindow() time.Duration {
	switch {
	case c.BatchWindow > 0:
		return c.BatchWindow
	case c.BatchWindow < 0:
		return 0 // batching off
	default:
		return 2 * time.Millisecond
	}
}

func (c Config) updateWindow() time.Duration {
	switch {
	case c.UpdateWindow > 0:
		return c.UpdateWindow
	case c.UpdateWindow < 0:
		return 0 // apply immediately
	default:
		return 5 * time.Millisecond
	}
}

func (c Config) retryBudget() float64 {
	switch {
	case c.RetryBudget > 0:
		return float64(c.RetryBudget)
	case c.RetryBudget < 0:
		return 0 // retries off
	default:
		return 10
	}
}

// Server is the ligra-serve service: registry + query engine +
// resilience layer + metrics. Create one with New, mount Handler on an
// http.Server, and on shutdown call StartDrain (stop accepting
// queries), then http.Server.Shutdown, then CancelInflight
// (cooperatively cancel whatever drain did not finish).
type Server struct {
	cfg      Config
	log      *slog.Logger
	reg      *Registry
	metrics  *Metrics
	engine   *engine.Engine
	batcher  *batch.Collector // nil when batching is disabled
	shed     *resilience.Shedder
	breakers *resilience.Breakers
	watchdog *resilience.Watchdog
	draining atomic.Bool

	// baseCtx is the parent of every query context; CancelInflight
	// cancels it, stopping cancellable algorithms within one chunk.
	baseCtx        context.Context
	cancelInflight context.CancelFunc

	mux *http.ServeMux
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		log:     logger,
		reg:     NewRegistry(),
		metrics: NewMetrics(),
		engine: engine.New(engine.NewCache(cfg.CacheBytes),
			engine.NewGovernor(runtime.GOMAXPROCS(0), cfg.MaxQueryProcs)),
		shed: resilience.NewShedder(resilience.ShedderConfig{
			Capacity:  cfg.maxConcurrent(),
			QueueWait: cfg.QueueWait,
			Target:    cfg.shedTarget(),
		}),
		breakers: resilience.NewBreakers(cfg.breakerThreshold(), cfg.BreakerCooldown),
	}
	if grace := cfg.watchdogGrace(); grace > 0 {
		s.watchdog = resilience.NewWatchdog(grace, logger)
	}
	s.reg.SetLoadRetry(
		resilience.NewBudget(cfg.retryBudget(), 0),
		resilience.RetryConfig{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second},
	)
	s.reg.SetUpdatePolicy(delta.Policy{
		Window:       cfg.updateWindow(),
		MaxPending:   cfg.UpdateMaxPending,
		CompactEvery: cfg.CompactEvery,
		HistoryDepth: cfg.UpdateHistoryDepth,
	})
	s.baseCtx, s.cancelInflight = context.WithCancel(context.Background())
	if w := cfg.batchWindow(); w > 0 {
		// The collector shares the engine's cache and governor so a
		// batched query hits the same cache entries and competes for the
		// same CPU budget as an unbatched one.
		s.batcher = batch.New(s.baseCtx, s.engine.Cache(), s.engine.Governor(), batch.Config{
			Window:   w,
			MaxBatch: cfg.BatchMax,
		})
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Registry exposes the graph registry (cmd/ligra-serve preloads through
// it; tests inspect it).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the counter set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Engine exposes the query engine (cache + coalescer + governor).
func (s *Server) Engine() *engine.Engine { return s.engine }

// Batcher exposes the batch collector (nil when batching is disabled).
func (s *Server) Batcher() *batch.Collector { return s.batcher }

// Breakers exposes the per-(algorithm, graph) circuit-breaker table.
func (s *Server) Breakers() *resilience.Breakers { return s.breakers }

// Watchdog exposes the query watchdog (nil when disabled).
func (s *Server) Watchdog() *resilience.Watchdog { return s.watchdog }

// Shedder exposes the adaptive admission controller.
func (s *Server) Shedder() *resilience.Shedder { return s.shed }

// Handler returns the root handler: the API mux wrapped in request
// logging.
func (s *Server) Handler() http.Handler {
	return s.logRequests(s.mux)
}

// StartDrain puts the server into draining mode: /healthz reports 503 (so
// load balancers stop routing here) and new loads/queries are refused
// with 503, while in-flight queries keep running. Safe to call more than
// once.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Info("drain started")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CancelInflight cancels the context under every executing query;
// cancellable algorithms stop within roughly one chunk of parallel work
// and their requests complete with 504 partial results. Call after the
// drain grace period has elapsed.
func (s *Server) CancelInflight() {
	s.log.Info("cancelling in-flight queries")
	s.cancelInflight()
}

// tenantOf identifies the requester for per-tenant fair-share
// accounting: the X-Tenant header when the deployment declared a
// trusted gateway sets it (Config.TrustTenantHeader), the client IP
// otherwise.
func (s *Server) tenantOf(r *http.Request) string {
	if s.cfg.TrustTenantHeader {
		if t := r.Header.Get("X-Tenant"); t != "" {
			return t
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// logRequests emits one structured log line per request.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}
