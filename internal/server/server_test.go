package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ligra/internal/faultinject"
	"ligra/internal/gen"
	"ligra/internal/graph"
)

// newTestServer returns a Server with test-friendly bounds and its
// httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	return resp.StatusCode, out
}

func metricsSnapshot(t *testing.T, baseURL string) Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// waitInFlight polls /metrics until at least n queries are executing.
func waitInFlight(t *testing.T, baseURL string, n int64) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if metricsSnapshot(t, baseURL).InFlight >= n {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// TestServerEndToEnd drives the full lifecycle the issue's acceptance
// criteria name: load from a file → list/stats → concurrent queries →
// deadline-interrupted query (504 + partial round) → fault-injected panic
// (500, server survives, counter increments) → evict, with /metrics
// verified along the way.
func TestServerEndToEnd(t *testing.T) {
	// Write a small RMAT graph to disk so the load path exercises file IO.
	g, err := gen.RMAT(11, 16, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rmat11.bin")
	if err := graph.SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{MaxConcurrent: 4, QueueWait: 200 * time.Millisecond})

	// Load.
	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/small", map[string]any{"path": path})
	if status != http.StatusOK {
		t.Fatalf("load: status %d, body %v", status, body)
	}
	if int(body["vertices"].(float64)) != g.NumVertices() {
		t.Fatalf("load reported %v vertices, want %d", body["vertices"], g.NumVertices())
	}
	if body["memory_bytes"].(float64) <= 0 {
		t.Error("load reported no memory estimate")
	}

	// Reload with the same spec is idempotent; with a different one, 409.
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/small", map[string]any{"path": path}); status != http.StatusOK {
		t.Fatalf("idempotent reload: status %d", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/small", map[string]any{"gen": "rmat"}); status != http.StatusConflict {
		t.Fatalf("conflicting reload: status %d, want 409", status)
	}

	// A second, generated graph big enough that interruption is certain.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/big", map[string]any{"gen": "rmat", "scale": 14}); status != http.StatusOK {
		t.Fatalf("gen load: status %d, body %v", status, body)
	}

	// List and stats.
	if status, body := doJSON(t, "GET", ts.URL+"/v1/graphs", nil); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	} else if n := len(body["graphs"].([]any)); n != 2 {
		t.Fatalf("list: %d graphs, want 2", n)
	}
	if status, body := doJSON(t, "GET", ts.URL+"/v1/graphs/small", nil); status != http.StatusOK || body["name"] != "small" {
		t.Fatalf("stats: status %d, body %v", status, body)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/graphs/nope", nil); status != http.StatusNotFound {
		t.Fatalf("missing graph: status %d, want 404", status)
	}

	// N concurrent queries over one registered graph all complete.
	queries := []map[string]any{
		{"algo": "bfs", "source": 0},
		{"algo": "bfs"},
		{"algo": "components"},
		{"algo": "components", "mode": "sparse"},
		{"algo": "pagerank"},
		{"algo": "kcore"},
		{"algo": "mis"},
		{"algo": "triangles"},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q map[string]any) {
			defer wg.Done()
			status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/small/query", q)
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("query %v: status %d, body %v", q, status, body)
				return
			}
			if body["summary"] == nil || body["summary"] == "" {
				errs[i] = fmt.Errorf("query %v: empty summary", q)
			}
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Bad requests.
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/small/query", map[string]any{"algo": "nope"}); status != http.StatusBadRequest {
		t.Fatalf("unknown algo: status %d, want 400", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/small/query", map[string]any{"algo": "bfs", "source": 1 << 30}); status != http.StatusBadRequest {
		t.Fatalf("out-of-range source: status %d, want 400", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/nope/query", map[string]any{"algo": "bfs"}); status != http.StatusNotFound {
		t.Fatalf("query on missing graph: status %d, want 404", status)
	}

	// Deadline: a 1ms budget cannot complete 100 PageRank iterations on
	// the scale-14 graph; the reply is 504 with the partial result and
	// the round the run was interrupted after.
	status, body = doJSON(t, "POST", ts.URL+"/v1/graphs/big/query",
		map[string]any{"algo": "pagerank", "timeout_ms": 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: status %d, body %v, want 504", status, body)
	}
	if body["partial"] != true {
		t.Errorf("deadline query: partial flag missing: %v", body)
	}
	if _, ok := body["summary"].(string); !ok {
		t.Errorf("deadline query: no partial summary: %v", body)
	}
	if !strings.Contains(body["error"].(string), "interrupted after round") {
		t.Errorf("deadline query: error %q does not report the round", body["error"])
	}

	// Fault-injected panic: the worker panic is contained, the client
	// gets 500, the counter increments, and the server keeps serving.
	disarm := faultinject.PanicOnChunk(1, "injected query panic")
	status, body = doJSON(t, "POST", ts.URL+"/v1/graphs/small/query", map[string]any{"algo": "bfs"})
	disarm()
	if status != http.StatusInternalServerError {
		t.Fatalf("panic query: status %d, body %v, want 500", status, body)
	}
	if !strings.Contains(body["error"].(string), "injected query panic") {
		t.Errorf("panic query: error %q does not carry the panic value", body["error"])
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/small/query", map[string]any{"algo": "bfs"}); status != http.StatusOK {
		t.Fatalf("server did not survive the contained panic: status %d", status)
	}

	// Metrics: per-algorithm requests/latency/timeout counters, the
	// panic counter, the idle in-flight gauge, per-graph memory.
	snap := metricsSnapshot(t, ts.URL)
	if snap.InFlight != 0 {
		t.Errorf("in_flight = %d, want 0 when idle", snap.InFlight)
	}
	bfs := snap.Algos["bfs"]
	if bfs.Requests < 4 {
		t.Errorf("bfs requests = %d, want >= 4", bfs.Requests)
	}
	if bfs.Panics != 1 {
		t.Errorf("bfs panics = %d, want 1", bfs.Panics)
	}
	if bfs.LatencyMsSum <= 0 {
		t.Error("bfs latency sum not accumulated")
	}
	if pr := snap.Algos["pagerank"]; pr.Timeouts < 1 {
		t.Errorf("pagerank timeouts = %d, want >= 1", pr.Timeouts)
	}
	if snap.GraphBytes <= 0 || len(snap.Graphs) != 2 {
		t.Errorf("graph memory missing from metrics: %+v", snap.Graphs)
	}
	if snap.Admitted < int64(len(queries)) {
		t.Errorf("admitted = %d, want >= %d", snap.Admitted, len(queries))
	}
	// The scheduler block is present and sane: every query ran parallel
	// primitives, so the scheduler saw activity (inline runs on a small
	// graph; dispatches when the pool engages), and the gauges are
	// non-negative.
	if snap.Scheduler.InlineRuns+snap.Scheduler.Dispatches == 0 {
		t.Error("scheduler block saw no activity after serving queries")
	}
	if snap.Scheduler.PoolWorkers < 0 || snap.Scheduler.Parks < 0 {
		t.Errorf("scheduler gauges negative: %+v", snap.Scheduler)
	}

	// Evict, then the graph is gone.
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/graphs/small", nil); status != http.StatusOK {
		t.Fatalf("evict: status %d", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/small/query", map[string]any{"algo": "bfs"}); status != http.StatusNotFound {
		t.Fatalf("query after evict: status %d, want 404", status)
	}
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/graphs/small", nil); status != http.StatusNotFound {
		t.Fatalf("double evict: status %d, want 404", status)
	}
}

// TestAdmissionControl proves the bounded semaphore: with one slot and no
// queue, a second query is rejected with 429 while the first executes.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueWait: 0})
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 14}); status != http.StatusOK {
		t.Fatalf("load: status %d, body %v", status, body)
	}

	done := make(chan int, 1)
	go func() {
		status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "pagerank"})
		done <- status
	}()
	if !waitInFlight(t, ts.URL, 1) {
		t.Fatal("first query never became in-flight")
	}
	status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-admission query: status %d, want 429", status)
	}
	if first := <-done; first != http.StatusOK {
		t.Fatalf("admitted query: status %d", first)
	}
	if s.Metrics().Rejected.Value() < 1 {
		t.Error("rejected_429 counter not incremented")
	}
}

// TestDrainAndCancel proves the shutdown sequence: draining refuses new
// work but lets in-flight queries finish, and CancelInflight stops the
// stragglers cooperatively with 504 partial results.
func TestDrainAndCancel(t *testing.T) {
	t.Run("drain lets in-flight finish", func(t *testing.T) {
		s, ts := newTestServer(t, Config{MaxConcurrent: 2})
		if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 14}); status != http.StatusOK {
			t.Fatal("load failed")
		}
		done := make(chan int, 1)
		go func() {
			status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "pagerank"})
			done <- status
		}()
		if !waitInFlight(t, ts.URL, 1) {
			t.Fatal("query never became in-flight")
		}
		s.StartDrain()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
		}
		if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs"}); status != http.StatusServiceUnavailable {
			t.Errorf("new query while draining: status %d, want 503", status)
		}
		if status := <-done; status != http.StatusOK {
			t.Errorf("in-flight query during drain: status %d, want 200 (completed)", status)
		}
	})

	t.Run("cancel stops stragglers with partial results", func(t *testing.T) {
		s2, ts2 := newTestServer(t, Config{MaxConcurrent: 2})
		if status, _ := doJSON(t, "POST", ts2.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 14}); status != http.StatusOK {
			t.Fatal("load failed")
		}
		type reply struct {
			status int
			body   map[string]any
		}
		done := make(chan reply, 1)
		go func() {
			status, body := doJSON(t, "POST", ts2.URL+"/v1/graphs/g/query", map[string]any{"algo": "pagerank"})
			done <- reply{status, body}
		}()
		if !waitInFlight(t, ts2.URL, 1) {
			t.Fatal("query never became in-flight")
		}
		s2.StartDrain()
		s2.CancelInflight()
		r := <-done
		if r.status != http.StatusGatewayTimeout {
			t.Fatalf("cancelled query: status %d, body %v, want 504", r.status, r.body)
		}
		if r.body["partial"] != true {
			t.Errorf("cancelled query: no partial result: %v", r.body)
		}
	})
}
