package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"ligra/internal/algo"
	"ligra/internal/delta"
	"ligra/internal/parallel"
	"ligra/internal/server/engine"
)

// updateRequest is the body of POST /v1/graphs/{name}/update: a batch of
// edge mutations. See docs/SERVING.md for the wire contract.
type updateRequest struct {
	// Ops are applied in order as one atomic batch: readers observe
	// either none or all of them. Inserting an existing edge or deleting
	// a missing one is a counted no-op, so batches are idempotent under
	// replay. Self-loops are rejected; endpoints past the current vertex
	// count grow the graph.
	Ops []delta.EdgeOp `json:"ops"`
}

// updateResponse is the body of an update reply.
type updateResponse struct {
	Graph string `json:"graph"`
	delta.ApplyResult
	ElapsedMs float64 `json:"elapsed_ms"`
}

// handleUpdate applies one edge batch through the graph's group commit:
// concurrent requests that arrive within the update window share one
// commit (and one snapshot version), a full backlog is turned away with
// 429 + Retry-After, and the response reports the snapshot version the
// batch produced.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad update request: %v", err)
		return
	}
	start := time.Now()
	res, err := s.reg.Update(r.Context(), name, req.Ops)
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	switch {
	case err == nil:
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, delta.ErrBusy):
		retryAfter(w, s.cfg.updateWindow()+50*time.Millisecond)
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":      fmt.Sprintf("update backlog full for %q, retry later", name),
			"error_type": "update_busy",
		})
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away while waiting on the group commit; its
		// ops still land with the commit's leader.
		writeError(w, http.StatusGatewayTimeout, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if res.Version != res.PrevVersion {
		s.log.Info("update applied", "graph", name,
			"version", res.Version, "prev_version", res.PrevVersion,
			"inserted", res.Inserted, "deleted", res.Deleted, "ignored", res.Ignored,
			"requests_batched", res.Requests, "compacted", res.Compacted,
			"dur_ms", elapsed)
	}
	writeJSON(w, http.StatusOK, updateResponse{Graph: name, ApplyResult: res, ElapsedMs: elapsed})
}

// incrementalRun serves the algorithms with incremental refresh paths
// ("components", "pagerank-delta") from the pinned snapshot's delta
// store: when the store's previous result can be carried forward by
// replaying the delta log, the refresh touches only delta-affected
// vertices; otherwise it falls back to a full recompute internally.
// Reports ok=false for every other algorithm, sending the caller to the
// plain runner path. The result mirrors the registry runner's shape,
// plus an "incremental" detail reporting which path served it.
func incrementalRun(ctx context.Context, pin *delta.Pin, algoName string, p algo.Params) (val engine.Value, handled bool, err error) {
	st := pin.Store()
	if st == nil {
		return engine.Value{}, false, nil
	}
	// Same panic containment as safeRun: a worker panic inside a refresh
	// must surface as a contained error, never take down the process.
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parallel.PanicError); ok {
				err = pe
				return
			}
			err = &parallel.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	switch algoName {
	case "components":
		res, incremental, err := st.RefreshCC(ctx, pin, p.EdgeMapOptions())
		rr := algo.RunResult{
			Summary: fmt.Sprintf("Components: %d components in %d rounds", res.Components, res.Rounds),
			Details: map[string]any{"components": res.Components, "rounds": res.Rounds, "incremental": incremental},
		}
		return engine.Value{Data: rr, Bytes: rr.EstimateBytes()}, true, err
	case "pagerank-delta":
		o := algo.DefaultPageRankOptions()
		o.EdgeMap = p.EdgeMapOptions()
		res, incremental, err := st.RefreshPageRankDelta(ctx, pin, o, 1e-3)
		rr := algo.RunResult{
			Summary: fmt.Sprintf("PageRank-Delta: %d iterations, final L1 change %.3g", res.Iterations, res.Err),
			Details: map[string]any{"iterations": res.Iterations, "l1_change": res.Err, "incremental": incremental},
		}
		return engine.Value{Data: rr, Bytes: rr.EstimateBytes()}, true, err
	}
	return engine.Value{}, false, nil
}
