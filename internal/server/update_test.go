package server

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ligra/internal/algo"
	"ligra/internal/compress"
	"ligra/internal/core"
	"ligra/internal/delta"
	"ligra/internal/gen"
)

// TestUpdateEndToEnd drives the dynamic-graph lifecycle over HTTP: load
// → query (caches under v1) → update batch (version bump, listing
// refresh) → re-query (new snapshot, incremental refresh) → verify the
// incremental answer against a full recompute on the live snapshot.
func TestUpdateEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{UpdateWindow: -1, CacheBytes: 1 << 20})

	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 10}); status != http.StatusOK {
		t.Fatalf("load: %d %v", status, body)
	}

	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "components"})
	if status != http.StatusOK {
		t.Fatalf("query: %d %v", status, body)
	}
	fullComponents := body["details"].(map[string]any)["components"].(float64)

	// The first update: two fresh edges bridging high-numbered vertices
	// (rMat leaves isolated vertices at the top of the ID space, so the
	// component count is very likely to change; correctness is asserted
	// against full recompute either way).
	n := s.Registry().List()[0].Vertices
	status, body = doJSON(t, "POST", ts.URL+"/v1/graphs/g/update", map[string]any{
		"ops": []map[string]any{
			{"src": 0, "dst": n - 1},
			{"src": 1, "dst": n - 2},
			{"src": 0, "dst": n - 1, "del": true},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("update: %d %v", status, body)
	}
	if body["version"].(float64) <= body["prev_version"].(float64) {
		t.Fatalf("update did not advance the version: %v", body)
	}
	version := body["version"].(float64)

	// Listing reflects the new snapshot.
	info := s.Registry().List()[0]
	if info.SnapshotVersion != uint64(version) {
		t.Fatalf("listing snapshot_version %d, update reported %v", info.SnapshotVersion, version)
	}

	// Re-query: keyed under the new version, so not served from the v1
	// cache entry; the refresh path replays the delta log.
	status, body = doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "components"})
	if status != http.StatusOK {
		t.Fatalf("re-query: %d %v", status, body)
	}
	if body["cached"] == true {
		t.Fatal("post-update query served from the stale generation's cache")
	}
	details := body["details"].(map[string]any)
	if details["incremental"] != true {
		t.Fatalf("post-update components not served incrementally: %v", details)
	}

	// Cross-validate against a full recompute on the current snapshot.
	pin, _, err := s.Registry().Acquire(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()
	full, err := algo.ConnectedComponentsCtx(context.Background(), pin.View(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := details["components"].(float64); int(got) != full.Components {
		t.Fatalf("incremental components %v, full recompute %d (was %v before update)",
			got, full.Components, fullComponents)
	}

	// Same query again is a cache hit under the new version.
	if _, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "components"}); body["cached"] != true {
		t.Fatalf("repeat query not cached: %v", body)
	}

	// /metrics gained the updates block and per-graph gauges.
	snap := metricsSnapshot(t, ts.URL)
	if snap.Updates.Batches == 0 || snap.Updates.Inserted == 0 {
		t.Fatalf("updates block not populated: %+v", snap.Updates)
	}
	if snap.Updates.IncrementalRuns == 0 {
		t.Fatalf("incremental runs not counted: %+v", snap.Updates)
	}
	if snap.Graphs[0].SnapshotVersion != uint64(version) {
		t.Fatalf("metrics snapshot_version %d, want %v", snap.Graphs[0].SnapshotVersion, version)
	}
}

func TestUpdateValidationAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{UpdateWindow: -1})
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/nope/update", map[string]any{
		"ops": []map[string]any{{"src": 1, "dst": 2}},
	}); status != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", status)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g2", map[string]any{"gen": "rmat", "scale": 8}); status != http.StatusOK {
		t.Fatalf("load: %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g2/update", map[string]any{
		"ops": []map[string]any{{"src": 3, "dst": 3}},
	}); status != http.StatusBadRequest {
		t.Fatalf("self-loop: status %d (%v), want 400", status, body)
	}
}

// TestUpdateBacklog429 floods a store whose pending budget admits a
// single in-flight batch: concurrent writers must see 429 with a
// Retry-After header, and the rejection must be counted.
func TestUpdateBacklog429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		UpdateWindow:     50 * time.Millisecond,
		UpdateMaxPending: 2,
	})
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 8}); status != http.StatusOK {
		t.Fatalf("load: %d %v", status, body)
	}
	var mu sync.Mutex
	got429 := false
	var wg sync.WaitGroup
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := got429
		mu.Unlock()
		if done {
			break
		}
		wg.Add(4)
		for w := 0; w < 4; w++ {
			go func(w int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"ops":[{"src":%d,"dst":1000},{"src":%d,"dst":1000,"del":true}]}`, w+2, w+2)
				resp, err := http.Post(ts.URL+"/v1/graphs/g/update", "application/json", strings.NewReader(body))
				if err != nil {
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					mu.Lock()
					got429 = true
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	}
	if !got429 {
		t.Fatal("backlog flood never produced a 429")
	}
	if metricsSnapshot(t, ts.URL).Updates.Rejected == 0 {
		t.Fatal("rejected_busy not counted")
	}
	_ = s
}

// TestEvictWhileQueryRunningMmap is the PR 8 regression guard the issue
// names: a pinned snapshot of an mmap-backed graph must keep its mapping
// alive until the last reader detaches, and eviction must unmap it
// afterwards.
func TestEvictWhileQueryRunningMmap(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.PBBSRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compress.Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.gc")
	if err := compress.WriteCompressedFile(path, c); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{UpdateWindow: -1})
	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/m", map[string]any{"path": path, "mmap": true})
	if status != http.StatusOK {
		t.Fatalf("load: %d %v", status, body)
	}
	if s.Registry().List()[0].MappedBytes == 0 {
		t.Skip("mmap not available on this platform")
	}

	// An update batch overlays the mapped base, so the pinned snapshot
	// reads through to the mapping.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/m/update", map[string]any{
		"ops": []map[string]any{{"src": 0, "dst": 1}},
	}); status != http.StatusOK {
		t.Fatalf("update: %d %v", status, body)
	}

	pin, _, err := s.Registry().Acquire(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	mapped, ok := pin.View().(interface{ MappedBytes() int64 })
	if !ok || mapped.MappedBytes() == 0 {
		t.Fatalf("pinned view lost its mapping before eviction")
	}

	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/graphs/m", nil); status != http.StatusOK {
		t.Fatal("evict failed")
	}
	// The mapping must survive while the pin is held; the snapshot must
	// stay traversable end to end.
	if mapped.MappedBytes() == 0 {
		t.Fatal("mapping released while a query held a pin")
	}
	res, err := algo.ConnectedComponentsCtx(context.Background(), pin.View(), core.Options{})
	if err != nil || res.Components == 0 {
		t.Fatalf("pinned traversal after evict failed: %v %+v", err, res)
	}
	pin.Release()
	if mapped.MappedBytes() != 0 {
		t.Fatal("mapping not released after the last reader detached")
	}

	// New queries see the eviction.
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/m/query", map[string]any{"algo": "components"}); status != http.StatusNotFound {
		t.Fatalf("query after evict: status %d, want 404", status)
	}
}

// TestConcurrentQueriesAndUpdates is the race-enabled acceptance test:
// queries keep running against pinned snapshots while update batches
// land. Readers must never fail, never block on writers, and at the end
// the incremental state must agree with a full recompute.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	s, ts := newTestServer(t, Config{UpdateWindow: time.Millisecond, CacheBytes: -1})
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 10}); status != http.StatusOK {
		t.Fatalf("load: %d %v", status, body)
	}
	n := s.Registry().List()[0].Vertices

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	// Writers: small randomized batches, insert/delete mix.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := (w*131 + i*17) % n
				dst := (src + 1 + (i*29)%(n-1)) % n
				if src == dst {
					continue
				}
				del := i%3 == 0
				body := fmt.Sprintf(`{"ops":[{"src":%d,"dst":%d,"del":%t}]}`, src, dst, del)
				resp, err := http.Post(ts.URL+"/v1/graphs/g/update", "application/json", strings.NewReader(body))
				if err != nil {
					report("update: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					report("update status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	// Readers: components queries against whatever snapshot they pin.
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "components"})
				if status != http.StatusOK {
					report("query status %d: %v", status, body)
					return
				}
			}
		}()
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}

	// Settle: the store's memoized incremental state must agree with a
	// full recompute on the final snapshot.
	pin, _, err := s.Registry().Acquire(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()
	st := pin.Store()
	incRes, _, err := st.RefreshCC(context.Background(), pin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := algo.ConnectedComponentsCtx(context.Background(), pin.View(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if incRes.Components != full.Components {
		t.Fatalf("after the storm: incremental %d components, full %d", incRes.Components, full.Components)
	}
	var _ *delta.Store = st
}
