package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"ligra/internal/graph"
)

func TestReproListDuringLoadRace(t *testing.T) {
	g := testGraph(t)
	r := NewRegistry()
	started := make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					r.List()
				}
			}
		}()
	}
	go func() {
		defer close(done)
		_, _ = r.Load(context.Background(), "g", "src", func() (graph.View, error) {
			close(started)
			time.Sleep(50 * time.Millisecond)
			return g, nil
		})
	}()
	<-started
	wg.Wait()
}
