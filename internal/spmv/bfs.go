package spmv

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"

	"ligra/internal/bitset"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// BFSOptions configures the BFS-levels kernel.
type BFSOptions struct {
	// Mode forces a direction for every round: core.Auto applies the
	// |U| + outDegrees(U) > threshold heuristic, core.ForceSparse always
	// scatters (push), core.ForceDense always gathers (pull).
	Mode core.Mode
	// Threshold overrides the dense-switch threshold (0 = |E| / 20, the
	// paper's constant — identical to edgeMap's default).
	Threshold int64
}

// BFSResult carries the output of the BFS-levels kernel, shaped to match
// the edgeMap backend's reporting: Rounds is the BFS depth reached and
// Visited counts reachable vertices including the source.
type BFSResult struct {
	// Levels[v] is the distance in edges from the source, -1 if
	// unreachable. Identical to algo.BFSLevels output.
	Levels  []int32
	Rounds  int
	Visited int
}

// BFSLevels computes per-vertex BFS levels as iterated masked sparse
// matrix-vector products over the (boolean, |, &) semiring: each round
// multiplies the adjacency transpose by the frontier indicator vector under
// the complement of the visited mask, y = (¬visited) ∧ (Aᵀ ⊗ f). The push
// realization scatters frontier rows with a CAS per newly claimed level;
// the pull realization scans unvisited destinations' in-edges against the
// frontier bitset with early exit, choosing direction per round with
// edgeMap's |U| + outDegrees(U) > |E|/20 heuristic.
//
// Cancellation: ctx (nil = background) is observed at chunk granularity.
// On interruption the partial Levels hold correct values for every vertex
// claimed so far (-1 elsewhere) — the same contract as algo.BFSLevelsCtx —
// and the error wraps the cause (including contained worker panics as
// *parallel.PanicError). Rounds reflects completed rounds.
func BFSLevels(ctx context.Context, g graph.View, source uint32, o BFSOptions) (*BFSResult, error) {
	n := g.NumVertices()
	if int64(source) >= int64(n) {
		return nil, fmt.Errorf("spmv: bfs source %d out of range (n=%d)", source, n)
	}
	levels := make([]int32, n)
	parallel.Fill(levels, -1)
	levels[source] = 0

	threshold := o.Threshold
	if threshold <= 0 {
		threshold = g.NumEdges() / core.DefaultThresholdDenominator
	}
	adj := rawCSR(g)

	frontier := bitset.New(n)
	frontier.Set(int(source))
	fsize := 1
	visited := 1
	rounds := 0
	level := int32(0)
	for fsize > 0 {
		level++
		outDeg, err := frontierOutDegrees(ctx, g, frontier)
		if err != nil {
			return &BFSResult{Levels: levels, Rounds: rounds, Visited: visited}, err
		}
		pull := int64(fsize)+outDeg > threshold
		switch o.Mode {
		case core.ForceSparse:
			pull = false
		case core.ForceDense:
			pull = true
		}
		next := bitset.New(n)
		if pull {
			err = bfsPull(ctx, g, adj, frontier, next, levels, level)
		} else {
			err = bfsPush(ctx, g, adj, frontier, next, levels, level)
		}
		if err != nil {
			return &BFSResult{Levels: levels, Rounds: rounds, Visited: visited}, err
		}
		nsize := next.Count()
		core.RecordTraversal(fsize, outDeg, pull, false, false, nsize)
		frontier, fsize = next, nsize
		visited += nsize
		if nsize > 0 {
			rounds++
		}
	}
	return &BFSResult{Levels: levels, Rounds: rounds, Visited: visited}, nil
}

// bfsPush scatters each frontier vertex's out-row, claiming unvisited
// destinations with a CAS on the level array (multiple sources may race for
// one destination within a round; exactly one wins).
func bfsPush(ctx context.Context, g graph.View, adj csr, frontier, next *bitset.Bitset, levels []int32, level int32) error {
	words := frontier.Words()
	claim := func(d uint32) {
		if atomic.LoadInt32(&levels[d]) == -1 &&
			atomic.CompareAndSwapInt32(&levels[d], -1, level) {
			next.SetAtomic(int(d))
		}
	}
	return parallel.ForCtx(ctx, len(words), func(wi int) {
		w := words[wi]
		if w == 0 {
			return
		}
		base := uint32(wi * 64)
		for w != 0 {
			s := base + uint32(bits.TrailingZeros64(w))
			w &= w - 1
			if adj.haveOut {
				lo, hi := adj.outOff[s], adj.outOff[s+1]
				for _, d := range adj.outDst[lo:hi] {
					claim(d)
				}
			} else {
				g.OutNeighbors(s, func(d uint32, _ int32) bool {
					claim(d)
					return true
				})
			}
		}
	})
}

// bfsPull scans every still-unvisited destination's in-row against the
// frontier bitset, stopping at the first frontier source (the boolean
// semiring's OR saturates). Chunks are aligned to whole bitset words, so
// levels and next see one writer per destination — plain stores, no
// atomics, which is where the pull direction's speed comes from.
func bfsPull(ctx context.Context, g graph.View, adj csr, frontier, next *bitset.Bitset, levels []int32, level int32) error {
	n := len(levels)
	fw := frontier.Words()
	inFrontier := func(s uint32) bool { return fw[s>>6]&(1<<(s&63)) != 0 }
	return parallel.ForRangeGrainCtx(ctx, n, denseGrain(ctx, n), func(lo, hi int) {
		for d := lo; d < hi; d++ {
			if levels[d] != -1 {
				continue
			}
			if adj.haveIn {
				ilo, ihi := adj.inOff[d], adj.inOff[d+1]
				for _, s := range adj.inSrc[ilo:ihi] {
					if inFrontier(s) {
						levels[d] = level
						next.Set(d)
						break
					}
				}
			} else {
				g.InNeighbors(uint32(d), func(s uint32, _ int32) bool {
					if inFrontier(s) {
						levels[d] = level
						next.Set(d)
						return false
					}
					return true
				})
			}
		}
	})
}
