package spmv

import (
	"context"
	"math"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// PageRankOptions configures the PageRank kernel. The zero value selects
// the same defaults as the edgeMap backend (damping 0.85, epsilon 1e-7,
// 100 iterations when no stopping rule is given).
type PageRankOptions struct {
	Damping       float64
	Epsilon       float64
	MaxIterations int
}

// PageRankResult carries the output of the PageRank kernel; the fields
// mirror algo.PageRankResult.
type PageRankResult struct {
	Ranks      []float64
	Iterations int
	Err        float64
}

// PageRank runs power iteration as a pull-mode (+, ×) SpMV: each round
// computes p' = base + d·(Aᵀ p̂) where p̂[v] = p[v]/deg⁺(v), gathering every
// destination's in-row into a register and fusing the rank update and the
// per-vertex L1 residual into the same pass. There is no push realization:
// the full-vertex "frontier" of power iteration is exactly the shape where
// pull wins (and where edgeMap itself always goes dense).
//
// The result is bit-identical to algo.PageRankCtx under the default (auto
// or dense) mode: the gather accumulates each destination's in-edges in the
// same order as edgeMap's dense pull, the dangling-mass and L1 reductions
// use the same fixed-block parallel.SumFunc tree, and rank updates are
// double-buffered so an interrupted round leaves the previous iteration's
// ranks untouched. (Forcing mode=sparse on the edgeMap backend makes *that*
// backend nondeterministic in the low bits — concurrent atomic float adds —
// so bit-identity is defined against the deterministic dense path.)
//
// Cancellation: ctx (nil = background) is observed before each iteration
// and at chunk granularity inside the gather. On interruption it returns
// the ranks of the last fully completed iteration — the same contract as
// algo.PageRankCtx — with the cause (context error or contained
// *parallel.PanicError) as the returned error.
func PageRank(ctx context.Context, g graph.View, o PageRankOptions) (*PageRankResult, error) {
	n := g.NumVertices()
	if n == 0 {
		if ctx != nil && ctx.Err() != nil {
			return &PageRankResult{}, ctx.Err()
		}
		return &PageRankResult{}, nil
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.MaxIterations <= 0 && o.Epsilon <= 0 {
		o.MaxIterations = 100
	}

	p := make([]float64, n)
	pNext := make([]float64, n)
	pDiv := make([]float64, n)  // p[v]/deg⁺(v), read-only during the gather
	delta := make([]float64, n) // |p'[v] - p[v]|, reduced after the gather
	parallel.Fill(p, 1/float64(n))

	adj := rawCSR(g)
	m := g.NumEdges()
	grain := parallel.AutoGrainCtx(ctx, n)

	iters := 0
	errL1 := math.Inf(1)
	for {
		if o.MaxIterations > 0 && iters >= o.MaxIterations {
			break
		}
		if o.Epsilon > 0 && errL1 < o.Epsilon {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			return &PageRankResult{Ranks: p, Iterations: iters, Err: errL1}, ctx.Err()
		}
		// Dangling mass: rank held by out-degree-0 vertices, spread evenly.
		dangling := parallel.SumFunc(n, func(i int) float64 {
			if g.OutDegree(uint32(i)) == 0 {
				return p[i]
			}
			return 0
		})
		parallel.For(n, func(i int) {
			if deg := g.OutDegree(uint32(i)); deg > 0 {
				pDiv[i] = p[i] / float64(deg)
			} else {
				pDiv[i] = 0
			}
		})
		base := (1-o.Damping)/float64(n) + o.Damping*dangling/float64(n)

		// Fused gather: one in-row scan per destination computes the new
		// rank and its residual. Writes go only to the pNext/delta scratch,
		// so an aborted pass cannot corrupt p.
		err := parallel.ForRangeGrainCtx(ctx, n, grain, func(lo, hi int) {
			if adj.haveIn {
				for d := lo; d < hi; d++ {
					var sum float64
					ilo, ihi := adj.inOff[d], adj.inOff[d+1]
					for _, s := range adj.inSrc[ilo:ihi] {
						sum += pDiv[s]
					}
					next := base + o.Damping*sum
					pNext[d] = next
					delta[d] = math.Abs(next - p[d])
				}
				return
			}
			for d := lo; d < hi; d++ {
				var sum float64
				g.InNeighbors(uint32(d), func(s uint32, _ int32) bool {
					sum += pDiv[s]
					return true
				})
				next := base + o.Damping*sum
				pNext[d] = next
				delta[d] = math.Abs(next - p[d])
			}
		})
		if err != nil {
			return &PageRankResult{Ranks: p, Iterations: iters, Err: errL1}, err
		}
		errL1 = parallel.SumFunc(n, func(i int) float64 { return delta[i] })
		p, pNext = pNext, p
		iters++
		core.RecordTraversal(n, m, true, false, false, 0)
	}
	return &PageRankResult{Ranks: p, Iterations: iters, Err: errL1}, nil
}
