// Package spmv is the framework's second execution backend: GraphBLAS-style
// semiring kernels in the LAGraph tradition, operating directly over the
// existing CSR / transpose arrays (no new graph representation, no copy).
// Where edgeMap expresses an algorithm as per-round frontier expansion with
// user callbacks, these kernels express the same algorithms as sparse
// matrix-vector products:
//
//   - BFS levels: y = A^T ⊗ f over the (boolean, |, &) semiring with the
//     visited set as a complement mask (bfs.go),
//   - PageRank: p' = d·(A^T p̂) + base over (+, ×), with the rank update and
//     L1 residual fused into the gather pass (pagerank.go),
//   - Triangle counting: tr(U·U ∘ U)-style masked SpGEMM over the rank-
//     oriented adjacency, realized as sorted-row intersections (triangles.go).
//
// The kernels run on the same worker-pool scheduler as edgeMap (package
// parallel), honor per-ctx proc leases, stop cooperatively at chunk
// granularity on ctx cancellation, contain worker panics as
// *parallel.PanicError, and feed core.RecordTraversal so both backends are
// observable through the same TraversalStats/SchedulerStats counters.
// Backend selection lives in internal/algo (Params.Backend); this package
// only provides the kernels.
//
// Fast paths gather over raw CSR slices when the view is a heap *graph.Graph;
// every kernel degrades to the View neighbor iterators otherwise (compressed,
// mmap, and delta-snapshot views), producing bit-identical results either way.
package spmv

import (
	"context"
	"math/bits"

	"ligra/internal/bitset"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// csr exposes the raw adjacency arrays of a heap CSR graph. Both directions
// may be nil (non-CSR views); symmetric graphs serve in-edges from the out
// arrays, exactly like graph.Graph's iterator methods.
type csr struct {
	outOff  []int64
	outDst  []uint32
	inOff   []int64
	inSrc   []uint32
	haveOut bool
	haveIn  bool
}

// rawCSR extracts the raw arrays when g is a heap CSR graph. A directed
// graph constructed without a transpose reports haveIn=false and pull-side
// kernels fall back to the InNeighbors iterator.
func rawCSR(g graph.View) csr {
	cg, ok := g.(*graph.Graph)
	if !ok {
		return csr{}
	}
	c := csr{outOff: cg.Offsets(), outDst: cg.Edges(), inOff: cg.InOffsets(), inSrc: cg.InEdges()}
	c.haveOut = c.outOff != nil
	c.haveIn = c.inOff != nil
	return c
}

// denseGrain returns the chunk grain for destination-indexed sweeps,
// rounded up to whole 64-bit bitset words so a chunk owns its output words
// outright and can use plain (non-atomic) stores, mirroring edgeMap's
// dense-block alignment.
func denseGrain(ctx context.Context, n int) int {
	g := parallel.AutoGrainCtx(ctx, n)
	return (g + 63) &^ 63
}

// frontierOutDegrees sums the out-degrees of the set bits of f — the
// outDegrees(U) term of the push/pull direction heuristic. Unlike edgeMap's
// version it counts exactly (the sum doubles as the round's EdgesScanned
// stat), which costs one O(1) degree lookup per frontier vertex.
func frontierOutDegrees(ctx context.Context, g graph.View, f *bitset.Bitset) (int64, error) {
	words := f.Words()
	return parallel.SumFuncCtx(ctx, len(words), func(wi int) int64 {
		w := words[wi]
		if w == 0 {
			return 0
		}
		base := uint32(wi * 64)
		var s int64
		for w != 0 {
			s += int64(g.OutDegree(base + uint32(bits.TrailingZeros64(w))))
			w &= w - 1
		}
		return s
	})
}
