// Cross-backend property tests: every kernel must be bit-identical to its
// edgeMap realization on every view backend (heap CSR, compressed, mmap,
// delta-store snapshot). The tests live in package spmv_test because the
// edgeMap oracles are in internal/algo, which itself imports internal/spmv
// for backend dispatch.
package spmv_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"ligra/internal/algo"
	"ligra/internal/compress"
	"ligra/internal/core"
	"ligra/internal/delta"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/spmv"
)

// testGraphs returns the heap CSR inputs the property matrix is built
// over: a scale-11 rMat (skewed, dense-leaning, symmetric) and a 3-D grid
// (uniform degree, high diameter, symmetric).
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rmat, err := gen.RMAT(11, 8, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	grid, err := gen.Grid3D(13)
	if err != nil {
		t.Fatalf("grid3d: %v", err)
	}
	return map[string]*graph.Graph{"rmat": rmat, "grid": grid}
}

// viewMatrix builds every backend view of g: the heap CSR itself, the
// in-memory compressed graph, a memory-mapped compressed file, and a
// delta-store snapshot with one applied update batch (so the overlay path,
// not just the base, is exercised).
func viewMatrix(t *testing.T, g *graph.Graph) map[string]graph.View {
	t.Helper()
	views := map[string]graph.View{"heap": g}

	c, err := compress.Compress(g)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	views["compressed"] = c

	path := filepath.Join(t.TempDir(), "g.ligragc")
	if err := compress.WriteCompressedFile(path, c); err != nil {
		t.Fatalf("write compressed: %v", err)
	}
	mapped, err := compress.LoadView(path, g.Symmetric(), true)
	if err != nil {
		t.Fatalf("mmap load: %v", err)
	}
	views["mmap"] = mapped

	store := delta.NewStore(g, delta.Config{})
	t.Cleanup(store.Release)
	n := uint32(g.NumVertices())
	ops := []delta.EdgeOp{
		{Src: 1, Dst: n - 2},
		{Src: 3, Dst: n - 5},
		{Src: 2, Dst: n - 1},
	}
	// Delete one existing edge so the snapshot is not purely additive.
	g.OutNeighbors(0, func(d uint32, _ int32) bool {
		ops = append(ops, delta.EdgeOp{Src: 0, Dst: d, Del: true})
		return false
	})
	if _, err := store.Update(context.Background(), ops); err != nil {
		t.Fatalf("delta update: %v", err)
	}
	pin, err := store.Acquire()
	if err != nil {
		t.Fatalf("delta acquire: %v", err)
	}
	t.Cleanup(pin.Release)
	views["snapshot"] = pin.View()

	return views
}

func TestBFSLevelsBitIdentical(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for vname, v := range viewMatrix(t, g) {
			want, err := algo.BFSLevelsCtx(nil, v, 0, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: edgemap oracle: %v", gname, vname, err)
			}
			for mname, mode := range map[string]core.Mode{
				"auto": core.Auto, "push": core.ForceSparse, "pull": core.ForceDense,
			} {
				res, err := spmv.BFSLevels(nil, v, 0, spmv.BFSOptions{Mode: mode})
				if err != nil {
					t.Fatalf("%s/%s/%s: spmv: %v", gname, vname, mname, err)
				}
				for i := range want {
					if res.Levels[i] != want[i] {
						t.Fatalf("%s/%s/%s: level[%d] = %d, edgemap %d",
							gname, vname, mname, i, res.Levels[i], want[i])
					}
				}
			}
			// Rounds/Visited must match the edgeMap runner's reporting.
			ref, err := algo.BFSCtx(nil, v, 0, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: bfs oracle: %v", gname, vname, err)
			}
			res, err := spmv.BFSLevels(nil, v, 0, spmv.BFSOptions{})
			if err != nil {
				t.Fatalf("%s/%s: spmv: %v", gname, vname, err)
			}
			if res.Rounds != ref.Rounds || res.Visited != ref.Visited {
				t.Fatalf("%s/%s: rounds/visited = %d/%d, edgemap %d/%d",
					gname, vname, res.Rounds, res.Visited, ref.Rounds, ref.Visited)
			}
		}
	}
}

func TestPageRankBitIdentical(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for vname, v := range viewMatrix(t, g) {
			opts := algo.DefaultPageRankOptions()
			opts.MaxIterations = 20 // bounded: identity per iteration implies identity at convergence
			want, err := algo.PageRankCtx(nil, v, opts)
			if err != nil {
				t.Fatalf("%s/%s: edgemap oracle: %v", gname, vname, err)
			}
			res, err := spmv.PageRank(nil, v, spmv.PageRankOptions{
				Damping: opts.Damping, Epsilon: opts.Epsilon, MaxIterations: opts.MaxIterations,
			})
			if err != nil {
				t.Fatalf("%s/%s: spmv: %v", gname, vname, err)
			}
			if res.Iterations != want.Iterations {
				t.Fatalf("%s/%s: iterations = %d, edgemap %d", gname, vname, res.Iterations, want.Iterations)
			}
			if math.Float64bits(res.Err) != math.Float64bits(want.Err) {
				t.Fatalf("%s/%s: errL1 = %x, edgemap %x", gname, vname,
					math.Float64bits(res.Err), math.Float64bits(want.Err))
			}
			for i := range want.Ranks {
				if math.Float64bits(res.Ranks[i]) != math.Float64bits(want.Ranks[i]) {
					t.Fatalf("%s/%s: rank[%d] = %x (%.17g), edgemap %x (%.17g)",
						gname, vname, i,
						math.Float64bits(res.Ranks[i]), res.Ranks[i],
						math.Float64bits(want.Ranks[i]), want.Ranks[i])
				}
			}
		}
	}
}

func TestTriangleCountIdentical(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for vname, v := range viewMatrix(t, g) {
			want := algo.TriangleCount(v)
			got, err := spmv.TriangleCount(nil, v)
			if err != nil {
				t.Fatalf("%s/%s: spmv: %v", gname, vname, err)
			}
			if got != want {
				t.Fatalf("%s/%s: triangles = %d, edgemap %d", gname, vname, got, want)
			}
			// Grids are triangle-free; the rMat case must be non-degenerate.
			if gname == "rmat" && want == 0 {
				t.Fatalf("%s/%s: degenerate input: no triangles", gname, vname)
			}
		}
	}
}

// TestBFSDirected exercises the transpose arrays: on a directed graph the
// pull realization gathers over in-edges that are distinct from out-edges.
func TestBFSDirected(t *testing.T) {
	g, err := gen.RMATDirected(10, 8, gen.PBBSRMAT, 7)
	if err != nil {
		t.Fatalf("rmat directed: %v", err)
	}
	want, err := algo.BFSLevelsCtx(nil, g, 0, core.Options{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for mname, mode := range map[string]core.Mode{
		"auto": core.Auto, "push": core.ForceSparse, "pull": core.ForceDense,
	} {
		res, err := spmv.BFSLevels(nil, g, 0, spmv.BFSOptions{Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mname, err)
		}
		for i := range want {
			if res.Levels[i] != want[i] {
				t.Fatalf("%s: level[%d] = %d, edgemap %d", mname, i, res.Levels[i], want[i])
			}
		}
	}
}

func TestCancelledContext(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := spmv.BFSLevels(ctx, g, 0, spmv.BFSOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("bfs: err = %v, want context.Canceled", err)
	}
	res, err := spmv.PageRank(ctx, g, spmv.PageRankOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pagerank: err = %v, want context.Canceled", err)
	}
	// Partial-result contract: ranks of the last completed iteration — here
	// iteration zero, the uniform initial vector.
	if res.Iterations != 0 {
		t.Fatalf("pagerank: iterations = %d, want 0", res.Iterations)
	}
	want := 1 / float64(g.NumVertices())
	for i, r := range res.Ranks {
		if r != want {
			t.Fatalf("pagerank: partial rank[%d] = %g, want initial %g", i, r, want)
		}
	}
	if _, err := spmv.TriangleCount(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("triangles: err = %v, want context.Canceled", err)
	}
}

// panicView panics during neighbor iteration; it is not a *graph.Graph, so
// the kernels take the iterator fallback and must contain the panic.
type panicView struct{ graph.View }

func (p panicView) OutNeighbors(v uint32, fn func(uint32, int32) bool) {
	panic("boom out")
}

func (p panicView) InNeighbors(v uint32, fn func(uint32, int32) bool) {
	panic("boom in")
}

func TestPanicContainment(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	v := panicView{g}

	var pe *parallel.PanicError
	if _, err := spmv.BFSLevels(nil, v, 0, spmv.BFSOptions{Mode: core.ForceSparse}); !errors.As(err, &pe) {
		t.Fatalf("bfs push: err = %v, want *parallel.PanicError", err)
	}
	if _, err := spmv.BFSLevels(nil, v, 0, spmv.BFSOptions{Mode: core.ForceDense}); !errors.As(err, &pe) {
		t.Fatalf("bfs pull: err = %v, want *parallel.PanicError", err)
	}
	if _, err := spmv.PageRank(nil, v, spmv.PageRankOptions{MaxIterations: 2}); !errors.As(err, &pe) {
		t.Fatalf("pagerank: err = %v, want *parallel.PanicError", err)
	}
	if _, err := spmv.TriangleCount(nil, v); !errors.As(err, &pe) {
		t.Fatalf("triangles: err = %v, want *parallel.PanicError", err)
	}
}

// TestTraversalStatsRecorded checks the kernels feed the shared
// TraversalStats counters, so both backends are observable through the
// same /metrics surface.
func TestTraversalStatsRecorded(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	before := core.SnapshotStats()
	res, err := spmv.BFSLevels(nil, g, 0, spmv.BFSOptions{})
	if err != nil {
		t.Fatalf("bfs: %v", err)
	}
	if _, err := spmv.PageRank(nil, g, spmv.PageRankOptions{MaxIterations: 3}); err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	d := core.SnapshotStats().Sub(before)
	if int(d.Calls) < res.Rounds+3 {
		t.Fatalf("calls delta = %d, want >= %d bfs rounds + 3 pagerank iterations", d.Calls, res.Rounds)
	}
	if d.Sparse+d.Dense+d.DenseForward != d.Calls {
		t.Fatalf("representation split %d+%d+%d != calls %d", d.Sparse, d.Dense, d.DenseForward, d.Calls)
	}
	if d.EdgesScanned == 0 {
		t.Fatalf("no edges recorded")
	}
}

// TestProcsLease checks the kernels honor a per-ctx proc cap (they must
// not outrun a governor lease).
func TestProcsLease(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	ctx := parallel.WithProcs(context.Background(), 1)
	want, err := algo.BFSLevelsCtx(nil, g, 0, core.Options{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	res, err := spmv.BFSLevels(ctx, g, 0, spmv.BFSOptions{})
	if err != nil {
		t.Fatalf("bfs: %v", err)
	}
	for i := range want {
		if res.Levels[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, res.Levels[i], want[i])
		}
	}
}
