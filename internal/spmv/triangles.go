package spmv

import (
	"context"

	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// markCutoff is the forward-row length below which the counting pass uses
// plain sorted-merge intersection instead of scatter/gather against the
// per-worker mark vector: marking and unmarking a tiny row costs more than
// merging it.
const markCutoff = 16

// TriangleCount counts the triangles of a symmetric simple graph as a
// masked SpGEMM over the rank-oriented adjacency: with U the
// lower-to-higher (degree, ID) orientation of A, the count is
// sum(U·U ∘ U) — each triangle contributes exactly one nonzero, at its
// lowest-ranked vertex. The kernel realizes one U·U row product at a time:
// scatter row U(v) into a per-worker dense mark vector (the mask), then for
// every u ∈ U(v) gather row U(u) against the mask, counting hits. Rows
// shorter than markCutoff skip the mask and use sorted-merge intersection —
// the same hybrid LAGraph uses for its "dot" vs "hash" triangle variants.
//
// The count is an exact integer, so it is trivially bit-identical to the
// edgeMap backend's algo.TriangleCount.
//
// Cancellation: ctx (nil = background) is observed at chunk granularity in
// every phase (orientation, bucketing, sort, count); on interruption the
// error wraps the cause (or a contained *parallel.PanicError) and the
// count is meaningless (0).
func TriangleCount(ctx context.Context, g graph.View) (int64, error) {
	n := g.NumVertices()
	if n == 0 {
		if ctx != nil && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return 0, nil
	}

	// Cache degrees: the orientation comparator runs once per directed
	// edge, and View.OutDegree may be virtual-dispatch per call.
	deg := make([]int32, n)
	if err := parallel.ForCtx(ctx, n, func(i int) {
		deg[i] = int32(g.OutDegree(uint32(i)))
	}); err != nil {
		return 0, err
	}
	// rank(v) < rank(d) iff (deg, id) of v is smaller — identical
	// orientation to algo.TriangleCount.
	higher := func(v, d uint32) bool {
		dv, dd := deg[v], deg[d]
		return dd > dv || (dd == dv && d > v)
	}

	adj := rawCSR(g)
	outRow := func(v uint32, fn func(d uint32)) {
		if adj.haveOut {
			lo, hi := adj.outOff[v], adj.outOff[v+1]
			for _, d := range adj.outDst[lo:hi] {
				fn(d)
			}
			return
		}
		g.OutNeighbors(v, func(d uint32, _ int32) bool { fn(d); return true })
	}

	// Build U's CSR: forward (higher-rank) neighbors of every vertex,
	// sorted ascending so the merge path and the gather scans are ordered.
	fwdDeg := make([]int64, n)
	if err := parallel.ForCtx(ctx, n, func(i int) {
		v := uint32(i)
		var c int64
		outRow(v, func(d uint32) {
			if higher(v, d) {
				c++
			}
		})
		fwdDeg[i] = c
	}); err != nil {
		return 0, err
	}
	offsets := make([]int64, n+1)
	total := parallel.ScanExclusive(fwdDeg, offsets[:n])
	offsets[n] = total

	fwd := make([]uint32, total)
	if err := parallel.ForCtx(ctx, n, func(i int) {
		v := uint32(i)
		k := offsets[i]
		outRow(v, func(d uint32) {
			if higher(v, d) {
				fwd[k] = d
				k++
			}
		})
		parallel.Sort(fwd[offsets[i]:k]) // rows are short (O(√m)); sorts sequentially
	}); err != nil {
		return 0, err
	}
	row := func(v uint32) []uint32 { return fwd[offsets[v]:offsets[v+1]] }

	// Count. Per-worker state: one dense mark vector (lazily allocated on
	// the worker's first marked row) and one padded counter; each worker
	// runs one chunk at a time, so neither needs synchronization.
	procs := parallel.CtxProcs(ctx)
	marks := make([][]bool, procs)
	type padded struct {
		c int64
		_ [56]byte
	}
	counts := make([]padded, procs)
	err := parallel.ForWorkerChunksCtx(ctx, n, 0, func(worker, _, lo, hi int) {
		mk := marks[worker]
		var c int64
		for i := lo; i < hi; i++ {
			rv := row(uint32(i))
			if len(rv) < markCutoff {
				for _, u := range rv {
					c += intersectSortedCount(rv, row(u))
				}
				continue
			}
			if mk == nil {
				mk = make([]bool, n)
				marks[worker] = mk
			}
			for _, u := range rv {
				mk[u] = true
			}
			for _, u := range rv {
				for _, w := range row(u) {
					if mk[w] {
						c++
					}
				}
			}
			for _, u := range rv {
				mk[u] = false
			}
		}
		counts[worker].c += c
	})
	if err != nil {
		return 0, err
	}
	var totalTri int64
	for i := range counts {
		totalTri += counts[i].c
	}
	return totalTri, nil
}

// intersectSortedCount returns |a ∩ b| for sorted slices, merging when the
// lengths are comparable and galloping when one side is much shorter (the
// same hybrid as the edgeMap backend's triangle count).
func intersectSortedCount(a, b []uint32) int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= 8*len(a) {
		var c int64
		lo := 0
		for _, x := range a {
			lo += searchU32(b[lo:], x)
			if lo < len(b) && b[lo] == x {
				c++
				lo++
			}
		}
		return c
	}
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// searchU32 returns the first index i with s[i] >= x (len(s) if none).
func searchU32(s []uint32, x uint32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
