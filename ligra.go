// Package ligra is a Go implementation of Ligra, the lightweight
// shared-memory graph processing framework of Shun and Blelloch (PPoPP
// 2013). It exposes the paper's programming interface — vertex subsets and
// the direction-optimizing edgeMap / vertexMap operators — together with
// graph construction, synthetic generators, byte-compressed storage
// (Ligra+), and the paper's applications (BFS, betweenness centrality,
// eccentricity estimation, connected components, PageRank, Bellman-Ford)
// plus k-core, maximal independent set and triangle counting.
//
// # Programming model
//
// A computation maintains a frontier (VertexSubset) and repeatedly applies
// EdgeMap: for every edge (s, d) with s in the frontier and Cond(d) true,
// an update function runs and d joins the output frontier if it returns
// true. EdgeMap transparently switches between a sparse (push) traversal
// over the frontier's out-edges and a dense (pull) traversal over all
// in-edges, whichever is cheaper for the current frontier — the
// generalization of direction-optimizing BFS that is the paper's central
// contribution.
//
// # Quick start
//
//	g, _ := ligra.RMAT(16, 16, ligra.PBBSRMAT, 42)
//	res := ligra.BFS(g, 0, ligra.Options{})
//	fmt.Println("reached", res.Visited, "vertices in", res.Rounds, "rounds")
//
// See examples/ for complete programs and cmd/ligra-bench for the
// reproduction of the paper's evaluation.
package ligra

import (
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// Re-exported core types. These aliases make the internal packages' types
// part of the public API surface without duplicating them.
type (
	// VertexSubset is a set of vertices with interchangeable sparse and
	// dense representations (Ligra's vertexSubset).
	VertexSubset = core.VertexSubset
	// EdgeFuncs bundles the Update / UpdateAtomic / Cond functions passed
	// to EdgeMap (Ligra's F and C).
	EdgeFuncs = core.EdgeFuncs
	// Options tunes one EdgeMap call (mode, threshold, dedup, tracing).
	Options = core.Options
	// Mode forces a traversal strategy.
	Mode = core.Mode
	// Trace records per-round traversal decisions.
	Trace = core.Trace
	// TraceEntry is one EdgeMap invocation's record.
	TraceEntry = core.TraceEntry

	// Graph is the CSR graph representation.
	Graph = graph.Graph
	// View is the representation-independent graph interface EdgeMap
	// traverses (CSR and compressed graphs both implement it).
	View = graph.View
	// Edge is a directed edge used during construction.
	Edge = graph.Edge
	// BuildOptions controls FromEdges.
	BuildOptions = graph.BuildOptions
	// Stats summarizes graph structure.
	Stats = graph.Stats
)

// Traversal modes (see Options.Mode).
const (
	// Auto applies the paper's |U| + outDegrees(U) > |E|/20 heuristic.
	Auto = core.Auto
	// ForceSparse always pushes over the frontier's out-edges.
	ForceSparse = core.ForceSparse
	// ForceDense always pulls over all vertices' in-edges.
	ForceDense = core.ForceDense
)

// DedupStrategy selects how RemoveDuplicates deduplicates sparse output
// frontiers (see Options.Dedup).
type DedupStrategy = core.DedupStrategy

// Deduplication strategies.
const (
	// DedupScratch claims IDs in a pooled O(|V|) CAS array (Ligra's
	// remDuplicates; the default).
	DedupScratch = core.DedupScratch
	// DedupHash inserts IDs into a phase-concurrent hash set sized to the
	// frontier (O(frontier) space).
	DedupHash = core.DedupHash
)

// None is the sentinel vertex ID (2^32-1).
const None = core.None

// DefaultThresholdDenominator is the paper's switch constant (20): edgeMap
// goes dense when |U| + outDegrees(U) > |E|/20.
const DefaultThresholdDenominator = core.DefaultThresholdDenominator

// EdgeMap applies f over the edges out of u and returns the subset of
// destinations whose update returned true, choosing the sparse or dense
// traversal per the options. See core.EdgeMap.
func EdgeMap(g View, u *VertexSubset, f EdgeFuncs, opts Options) *VertexSubset {
	return core.EdgeMap(g, u, f, opts)
}

// VertexMap applies fn to every vertex in u in parallel.
func VertexMap(u *VertexSubset, fn func(v uint32)) {
	core.VertexMap(u, fn)
}

// VertexFilter returns the members of u satisfying pred.
func VertexFilter(u *VertexSubset, pred func(v uint32) bool) *VertexSubset {
	return core.VertexFilter(u, pred)
}

// NewEmpty returns the empty subset over n vertices.
func NewEmpty(n int) *VertexSubset { return core.NewEmpty(n) }

// NewSingle returns {v} over n vertices.
func NewSingle(n int, v uint32) *VertexSubset { return core.NewSingle(n, v) }

// NewSparse wraps an ID array as a subset (takes ownership).
func NewSparse(n int, ids []uint32) *VertexSubset { return core.NewSparse(n, ids) }

// NewAll returns the full vertex set.
func NewAll(n int) *VertexSubset { return core.NewAll(n) }

// NewFromFunc returns the subset of vertices satisfying pred.
func NewFromFunc(n int, pred func(v uint32) bool) *VertexSubset {
	return core.NewFromFunc(n, pred)
}

// TraversalStats is a point-in-time copy of the process-wide traversal
// counters: EdgeMap calls, the sparse / dense / dense-forward decision
// split, frontier and output sizes, and the edge volume weighed by the
// direction heuristic. See SnapshotTraversalStats.
type TraversalStats = core.StatsSnapshot

// SnapshotTraversalStats returns the current process-wide traversal
// counters. Counters accumulate across every EdgeMap / EdgeMapData call in
// the process; to attribute activity to one region, snapshot before and
// after and use TraversalStats.Sub. Safe for concurrent use.
func SnapshotTraversalStats() TraversalStats { return core.SnapshotStats() }

// ResetTraversalStats zeroes the process-wide traversal counters.
func ResetTraversalStats() { core.ResetStats() }

// SchedulerStats is a point-in-time copy of the persistent worker-pool
// scheduler's counters: pool size, parallel-call dispatches versus
// inline runs (including the sequential cutoff), and worker park/wake
// counts. See SnapshotSchedulerStats and docs/PERFORMANCE.md.
type SchedulerStats = parallel.SchedulerStats

// SnapshotSchedulerStats returns the current process-wide scheduler
// counters. To attribute activity to one region, snapshot before and
// after and use SchedulerStats.Sub. Safe for concurrent use.
func SnapshotSchedulerStats() SchedulerStats { return parallel.SchedulerSnapshot() }

// ResetSchedulerStats zeroes the scheduler's dispatch/inline/park/wake
// counters (the pool-size gauge is untouched).
func ResetSchedulerStats() { parallel.ResetSchedulerStats() }

// Pair is one (vertex, payload) member of a data-carrying frontier.
type Pair[T any] = core.Pair[T]

// DataSubset is a frontier whose members carry per-vertex payloads
// (Ligra's vertexSubsetData).
type DataSubset[T any] = core.DataSubset[T]

// EdgeDataFuncs is the data-producing analogue of EdgeFuncs.
type EdgeDataFuncs[T any] = core.EdgeDataFuncs[T]

// EdgeMapData applies f over the edges out of u, returning the winning
// destinations together with the payloads their updates produced
// (Ligra's edgeMapData).
func EdgeMapData[T any](g View, u *VertexSubset, f EdgeDataFuncs[T], opts Options) *DataSubset[T] {
	return core.EdgeMapData(g, u, f, opts)
}
