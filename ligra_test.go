package ligra_test

import (
	"bytes"
	"math"
	"os"
	"sync/atomic"
	"testing"

	"ligra"
)

func TestMain(m *testing.M) {
	ligra.SetParallelism(4)
	os.Exit(m.Run())
}

func TestPublicQuickstartFlow(t *testing.T) {
	g, err := ligra.RMAT(10, 8, ligra.PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := ligra.ValidateGraph(g); err != nil {
		t.Fatal(err)
	}
	s := ligra.ComputeStats(g)
	if s.Vertices != 1024 || s.Edges != g.NumEdges() {
		t.Errorf("stats mismatch: %+v", s)
	}

	res := ligra.BFS(g, 0, ligra.Options{})
	if res.Visited < 2 {
		t.Errorf("BFS visited only %d", res.Visited)
	}
	cc := ligra.ConnectedComponents(g, ligra.Options{})
	if cc.Components < 1 {
		t.Error("no components?")
	}
	pr := ligra.PageRank(g, ligra.DefaultPageRankOptions())
	var mass float64
	for _, r := range pr.Ranks {
		mass += r
	}
	if math.Abs(mass-1) > 1e-6 {
		t.Errorf("PageRank mass = %v", mass)
	}
}

func TestPublicHandWrittenBFSAgrees(t *testing.T) {
	g, err := ligra.Grid3D(10)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	parents := make([]uint32, n)
	for i := range parents {
		parents[i] = ligra.None
	}
	parents[0] = 0
	f := ligra.EdgeFuncs{
		Update: func(s, d uint32, _ int32) bool {
			if parents[d] == ligra.None {
				parents[d] = s
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return atomic.CompareAndSwapUint32(&parents[d], ligra.None, s)
		},
		Cond: func(d uint32) bool { return parents[d] == ligra.None },
	}
	frontier := ligra.NewSingle(n, 0)
	for !frontier.IsEmpty() {
		frontier = ligra.EdgeMap(g, frontier, f, ligra.Options{})
	}
	want := ligra.BFS(g, 0, ligra.Options{})
	for v := 0; v < n; v++ {
		if (parents[v] == ligra.None) != (want.Parents[v] == ligra.None) {
			t.Fatalf("reachability differs at %d", v)
		}
	}
}

func TestPublicGraphIO(t *testing.T) {
	g, err := ligra.RandomLocal(300, 4, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ligra.WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ligra.ReadAdjacency(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Error("round trip size mismatch")
	}

	dir := t.TempDir()
	if err := ligra.SaveGraph(dir+"/g.bin", g, true); err != nil {
		t.Fatal(err)
	}
	g3, err := ligra.LoadGraph(dir+"/g.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Error("binary round trip mismatch")
	}
}

func TestPublicCompressedGraphRuns(t *testing.T) {
	g, err := ligra.RMAT(10, 8, ligra.PBBSRMAT, 9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ligra.Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	a := ligra.BFSLevels(g, 0, ligra.Options{})
	b := ligra.BFSLevels(c, 0, ligra.Options{})
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("level[%d]: csr %d vs compressed %d", v, a[v], b[v])
		}
	}
}

func TestPublicParallelismControls(t *testing.T) {
	old := ligra.SetParallelism(2)
	if ligra.Parallelism() != 2 {
		t.Error("SetParallelism did not take effect")
	}
	ligra.SetParallelism(old)
	ligra.SetParallelism(4)
}

func TestPublicWeightedRouting(t *testing.T) {
	g, err := ligra.Grid3D(8)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.AddWeights(ligra.HashWeight(50))
	sp := ligra.BellmanFord(wg, 0, ligra.Options{})
	if sp.NegativeCycle {
		t.Fatal("unexpected negative cycle")
	}
	// Torus is connected: everything reachable, dist 0 only at source.
	for v, d := range sp.Dist {
		if d >= ligra.InfDist {
			t.Fatalf("vertex %d unreachable on a torus", v)
		}
		if v != 0 && d == 0 {
			t.Fatalf("vertex %d at distance 0 with positive weights", v)
		}
	}
}

func TestPublicTriangleAndMISAndKCore(t *testing.T) {
	g, err := ligra.RMAT(9, 10, ligra.PBBSRMAT, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tc := ligra.TriangleCount(g); tc <= 0 {
		t.Errorf("triangles = %d on a dense power-law graph", tc)
	}
	mis := ligra.MIS(g, 1, ligra.Options{})
	size := 0
	for _, in := range mis.InSet {
		if in {
			size++
		}
	}
	if size == 0 {
		t.Error("empty MIS")
	}
	kc := ligra.KCore(g, ligra.Options{})
	if kc.MaxCore < 1 {
		t.Errorf("MaxCore = %d", kc.MaxCore)
	}
}

func TestPublicExtensionAlgorithms(t *testing.T) {
	g, err := ligra.WattsStrogatz(400, 4, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}

	// Spanning forest spans all components.
	cc := ligra.ConnectedComponents(g, ligra.Options{})
	sf := ligra.SpanningForest(g, ligra.Options{})
	if len(sf.Edges) != g.NumVertices()-cc.Components {
		t.Errorf("forest edges %d, want %d", len(sf.Edges), g.NumVertices()-cc.Components)
	}
	if len(sf.Roots) != cc.Components {
		t.Errorf("forest roots %d, want %d", len(sf.Roots), cc.Components)
	}

	// LDD-based connectivity agrees with label propagation.
	ldd := ligra.ConnectedComponentsLDD(g, 0.2, 1, ligra.Options{})
	for v := range cc.Labels {
		if ldd.Labels[v] != cc.Labels[v] {
			t.Fatalf("LDD CC disagrees at %d", v)
		}
	}

	// k-core variants agree.
	a := ligra.KCore(g, ligra.Options{})
	b := ligra.KCoreJulienne(g, ligra.Options{})
	for v := range a.Coreness {
		if a.Coreness[v] != b.Coreness[v] {
			t.Fatalf("k-core variants disagree at %d", v)
		}
	}

	// Coloring is proper; matching is symmetric.
	col := ligra.Coloring(g, 2, ligra.Options{})
	mm := ligra.MaximalMatching(g, 2)
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if d != v && col.Colors[v] == col.Colors[d] {
				t.Fatalf("improper coloring at edge %d-%d", v, d)
			}
			return true
		})
		if p := mm.Partner[v]; p != ligra.None && mm.Partner[p] != v {
			t.Fatalf("matching asymmetry at %d", v)
		}
	}

	// Eccentricity bound is sane.
	ecc := ligra.TwoPassEccentricity(g, 16, 3, ligra.Options{})
	if ecc.DiameterLowerBound < 1 {
		t.Errorf("diameter bound %d", ecc.DiameterLowerBound)
	}

	// Delta-stepping matches Bellman-Ford on hash weights.
	wg := g.AddWeights(ligra.HashWeight(20))
	bf := ligra.BellmanFord(wg, 0, ligra.Options{})
	ds, err := ligra.DeltaStepping(wg, 0, 0, ligra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range bf.Dist {
		if bf.Dist[v] != ds.Dist[v] {
			t.Fatalf("SSSP variants disagree at %d", v)
		}
	}
}

func TestPublicDirectedPipeline(t *testing.T) {
	g, err := ligra.RMATDirected(10, 6, ligra.Graph500RMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	scc := ligra.SCC(g, ligra.Options{})
	if scc.Components < 1 || scc.Components > g.NumVertices() {
		t.Errorf("SCC components = %d", scc.Components)
	}
	// Transpose BFS reaches at least the source.
	res := ligra.BFS(g.Transpose(), 0, ligra.Options{})
	if res.Visited < 1 {
		t.Error("transpose BFS broken")
	}
}

func TestPublicGraphTransforms(t *testing.T) {
	g, err := ligra.RMAT(9, 8, ligra.PBBSRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	perm := ligra.DegreeOrderPermutation(g)
	rg, err := ligra.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumEdges() != g.NumEdges() {
		t.Error("relabel changed edge count")
	}
	// Relabeling must not change component structure sizes.
	a := ligra.ConnectedComponents(g, ligra.Options{})
	b := ligra.ConnectedComponents(rg, ligra.Options{})
	if a.Components != b.Components {
		t.Errorf("components changed: %d vs %d", a.Components, b.Components)
	}
	// Induced subgraph of even vertices.
	sub, _, _, err := ligra.InducedSubgraph(g, func(v uint32) bool { return v%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != g.NumVertices()/2 {
		t.Errorf("subgraph n = %d", sub.NumVertices())
	}
	// Filter out all edges touching vertex 0.
	fg, err := ligra.FilterEdges(g, func(s, d uint32, _ int32) bool { return s != 0 && d != 0 })
	if err != nil {
		t.Fatal(err)
	}
	if fg.OutDegree(0) != 0 {
		t.Error("FilterEdges left edges at vertex 0")
	}
}

func TestPublicEdgeMapData(t *testing.T) {
	g, err := ligra.Grid3D(6)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	visited := make([]uint32, n)
	visited[0] = 1
	f := ligra.EdgeDataFuncs[uint32]{
		UpdateAtomic: func(s, d uint32, _ int32) (uint32, bool) {
			if atomic.CompareAndSwapUint32(&visited[d], 0, 1) {
				return s, true
			}
			return 0, false
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&visited[d]) == 0 },
	}
	out := ligra.EdgeMapData(g, ligra.NewSingle(n, 0), f, ligra.Options{})
	if out.Size() != 6 {
		t.Errorf("first wave size %d, want 6 (torus)", out.Size())
	}
	out.ForEach(func(v uint32, parent uint32) {
		if parent != 0 {
			t.Errorf("vertex %d discovered by %d, want 0", v, parent)
		}
	})
}

func TestPublicEdgeListAndLocalClustering(t *testing.T) {
	g, err := ligra.RMAT(9, 8, ligra.PBBSRMAT, 21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ligra.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ligra.ReadEdgeList(&buf, ligra.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("edge list round trip: %d vs %d edges", g2.NumEdges(), g.NumEdges())
	}

	appr, err := ligra.APPR(g, 0, 0.15, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, v := range appr.P {
		mass += v
	}
	for _, v := range appr.R {
		mass += v
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("APPR mass %v", mass)
	}
	sc := ligra.SweepCut(g, appr.P)
	if sc.Conductance <= 0 || sc.Conductance > 1 {
		t.Errorf("conductance %v", sc.Conductance)
	}
	lc, err := ligra.LocalCluster(g, 0, 0.15, 1e-5)
	if err != nil || len(lc.Cluster) == 0 {
		t.Errorf("LocalCluster: %v %v", lc, err)
	}

	// RadiiMulti with K > 64.
	rm := ligra.RadiiMulti(g, 100, 1, ligra.Options{})
	if len(rm.Sources) != 100 {
		t.Errorf("%d sources", len(rm.Sources))
	}
	base := ligra.Radii(g, ligra.RadiiOptions{K: 64, Seed: 1})
	_ = base // different samples; just ensure both run and are in range
	for _, r := range rm.Radii {
		if r < -1 {
			t.Fatalf("bad radius %d", r)
		}
	}
}

func TestPublicDedupStrategies(t *testing.T) {
	g, err := ligra.Grid3D(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []ligra.DedupStrategy{ligra.DedupScratch, ligra.DedupHash} {
		opts := ligra.Options{Mode: ligra.ForceSparse, RemoveDuplicates: true, Dedup: strat}
		res := ligra.ConnectedComponents(g, opts)
		if res.Components != 1 {
			t.Errorf("strategy %v: %d components on a torus", strat, res.Components)
		}
	}
}

func TestPublicLoadSniffsEveryFormat(t *testing.T) {
	g, err := ligra.RandomLocal(400, 4, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// One file per on-disk format; Load must sniff each by content.
	if err := ligra.SaveGraph(dir+"/g.txt", g, false); err != nil {
		t.Fatal(err)
	}
	if err := ligra.SaveGraph(dir+"/g.bin", g, true); err != nil {
		t.Fatal(err)
	}
	c, err := ligra.Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ligra.SaveCompressed(dir+"/g.gc", c); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path string
		opts ligra.LoadOptions
	}{
		{dir + "/g.txt", ligra.LoadOptions{Symmetric: true}},
		{dir + "/g.bin", ligra.LoadOptions{}},
		{dir + "/g.gc", ligra.LoadOptions{}},
	} {
		v, err := ligra.Load(tc.path, tc.opts)
		if err != nil {
			t.Fatalf("Load(%s): %v", tc.path, err)
		}
		if v.NumVertices() != g.NumVertices() || v.NumEdges() != g.NumEdges() {
			t.Errorf("Load(%s): got %d/%d vertices/edges, want %d/%d",
				tc.path, v.NumVertices(), v.NumEdges(), g.NumVertices(), g.NumEdges())
		}
	}

	// mmap is only legal for the compressed format.
	if _, err := ligra.Load(dir+"/g.bin", ligra.LoadOptions{MMap: true}); err == nil {
		t.Error("Load with MMap on a binary CSR file should fail")
	}
}

func TestPublicWritersAcceptViews(t *testing.T) {
	g, err := ligra.RandomLocal(200, 4, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ligra.Compress(g)
	if err != nil {
		t.Fatal(err)
	}

	// WriteAdjacency from a compressed view equals the heap graph's output.
	var fromHeap, fromCompressed bytes.Buffer
	if err := ligra.WriteAdjacency(&fromHeap, g); err != nil {
		t.Fatal(err)
	}
	if err := ligra.WriteAdjacency(&fromCompressed, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromHeap.Bytes(), fromCompressed.Bytes()) {
		t.Error("WriteAdjacency output differs between heap and compressed views")
	}

	var el bytes.Buffer
	if err := ligra.WriteEdgeList(&el, c); err != nil {
		t.Fatal(err)
	}
	g2, err := ligra.ReadEdgeList(&el, ligra.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("edge-list round trip: %d edges, want %d", g2.NumEdges(), g.NumEdges())
	}

	// ComputeStats on a view without a MemoryFootprint reports 0 bytes
	// but everything else.
	sc := ligra.ComputeStats(c)
	sg := ligra.ComputeStats(g)
	if sc.Vertices != sg.Vertices || sc.Edges != sg.Edges || sc.MaxOutDeg != sg.MaxOutDeg {
		t.Errorf("stats differ between views: %+v vs %+v", sc, sg)
	}
}
